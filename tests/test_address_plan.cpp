#include "sim/address_plan.hpp"

#include <gtest/gtest.h>

#include <map>

namespace mtscope::sim {
namespace {

class AddressPlanTest : public ::testing::Test {
 protected:
  static const AddressPlan& plan() {
    static const AddressPlan instance{SimConfig::tiny(7)};
    return instance;
  }
};

TEST_F(AddressPlanTest, DeterministicForSameSeed) {
  const AddressPlan again(SimConfig::tiny(7));
  EXPECT_EQ(again.ases().size(), plan().ases().size());
  EXPECT_EQ(again.allocated_blocks().size(), plan().allocated_blocks().size());
  EXPECT_EQ(again.dark_blocks().size(), plan().dark_blocks().size());
  EXPECT_EQ(again.rib().size(), plan().rib().size());
  for (std::size_t i = 0; i < 50 && i < plan().ases().size(); ++i) {
    EXPECT_EQ(again.ases()[i].country, plan().ases()[i].country);
    EXPECT_EQ(again.ases()[i].type, plan().ases()[i].type);
  }
}

TEST_F(AddressPlanTest, DifferentSeedsDiffer) {
  const AddressPlan other(SimConfig::tiny(8));
  EXPECT_NE(other.dark_blocks().size(), plan().dark_blocks().size());
}

TEST_F(AddressPlanTest, DarkAndActivePartitionAllocated) {
  const auto& dark = plan().dark_blocks();
  const auto& active = plan().active_blocks();
  EXPECT_EQ((dark & active).size(), 0u);
  EXPECT_EQ((dark | active), plan().allocated_blocks());
}

TEST_F(AddressPlanTest, RolesConsistentWithSets) {
  std::size_t checked = 0;
  plan().dark_blocks().for_each([&](net::Block24 block) {
    if (++checked > 2000) return;
    const BlockRole role = plan().role(block);
    EXPECT_TRUE(role == BlockRole::kDark || role == BlockRole::kTelescope);
  });
  checked = 0;
  plan().active_blocks().for_each([&](net::Block24 block) {
    if (++checked > 2000) return;
    const BlockRole role = plan().role(block);
    EXPECT_TRUE(role == BlockRole::kActive || role == BlockRole::kQuietActive ||
                role == BlockRole::kAsymAck);
  });
}

TEST_F(AddressPlanTest, UnallocatedOutsideUniverse) {
  EXPECT_EQ(plan().role(net::Block24(0x010101)), BlockRole::kUnallocated);
  EXPECT_FALSE(plan().as_of(net::Block24(0x010101)));
}

TEST_F(AddressPlanTest, TelescopesPlacedAndDark) {
  const auto& telescopes = plan().telescopes();
  ASSERT_EQ(telescopes.size(), 3u);
  EXPECT_EQ(telescopes[0].spec.code, "TUS1");
  EXPECT_EQ(telescopes[1].spec.code, "TEU1");
  EXPECT_EQ(telescopes[2].spec.code, "TEU2");

  // TUS1 covers three quarters of the telescope /8.
  EXPECT_EQ(telescopes[0].blocks.size(), 3u * 16384u);
  EXPECT_EQ(telescopes[1].blocks.size(), 32u);  // tiny config shrinks TEU1
  EXPECT_EQ(telescopes[2].blocks.size(), 8u);

  for (const auto& telescope : telescopes) {
    for (const net::Block24 block : telescope.blocks) {
      EXPECT_EQ(plan().role(block), BlockRole::kTelescope) << telescope.spec.code;
      EXPECT_TRUE(plan().dark_blocks().contains(block));
    }
    // Announced: covering prefixes are in the RIB.
    for (const net::Prefix& prefix : telescope.prefixes) {
      EXPECT_TRUE(plan().rib().is_routed(prefix.base())) << prefix.to_string();
    }
  }
}

TEST_F(AddressPlanTest, TelescopePrefixesCoverBlocksExactly) {
  for (const auto& telescope : plan().telescopes()) {
    std::uint64_t covered = 0;
    for (const net::Prefix& prefix : telescope.prefixes) covered += prefix.block24_count();
    EXPECT_EQ(covered, telescope.blocks.size()) << telescope.spec.code;
  }
}

TEST_F(AddressPlanTest, UnroutedSlash8sAreTrulyUnrouted) {
  ASSERT_EQ(plan().unrouted_slash8s().size(), 2u);
  for (const std::uint8_t base : plan().unrouted_slash8s()) {
    for (std::uint32_t i = 0; i < 65536; i += 977) {
      const net::Block24 block((std::uint32_t{base} << 16) | i);
      EXPECT_FALSE(plan().rib().is_routed(block));
      EXPECT_EQ(plan().role(block), BlockRole::kUnallocated);
    }
  }
}

TEST_F(AddressPlanTest, LegacySlash8Structure) {
  const std::uint32_t base = std::uint32_t{plan().legacy_slash8()} << 16;
  // Right /9: all dark and routed.
  for (std::uint32_t i = 32768; i < 65536; i += 1111) {
    const net::Block24 block(base | i);
    EXPECT_EQ(plan().role(block), BlockRole::kDark);
    EXPECT_TRUE(plan().rib().is_routed(block));
  }
  // First /10: allocated dark but NOT routed.
  for (std::uint32_t i = 0; i < 16384; i += 1111) {
    const net::Block24 block(base | i);
    EXPECT_EQ(plan().role(block), BlockRole::kDark);
    EXPECT_FALSE(plan().rib().is_routed(block));
  }
  // The /14 at 20480: dark and routed.
  EXPECT_EQ(plan().role(net::Block24(base | 20480)), BlockRole::kDark);
  EXPECT_TRUE(plan().rib().is_routed(net::Block24(base | 20490)));
}

TEST_F(AddressPlanTest, AuxiliaryDatasetsCoverAllocatedSpace) {
  const auto pfx2as = plan().make_pfx2as();
  const auto as2org = plan().make_as2org();
  EXPECT_EQ(as2org.size(), plan().ases().size());

  std::size_t checked = 0;
  std::size_t geo_hits = 0;
  std::size_t as_hits = 0;
  plan().allocated_blocks().for_each([&](net::Block24 block) {
    if (++checked > 3000) return;
    if (plan().geodb().country_of(block)) ++geo_hits;
    if (plan().rib().is_routed(block)) {
      const auto asn = pfx2as.resolve(block);
      if (asn) {
        ++as_hits;
        EXPECT_NE(as2org.resolve(*asn), nullptr);
      }
    }
  });
  EXPECT_EQ(geo_hits, std::min<std::size_t>(checked, 3000));  // geodb covers allocations
  EXPECT_GT(as_hits, 0u);
}

TEST_F(AddressPlanTest, GeoCountryMatchesOwningAs) {
  std::size_t checked = 0;
  plan().allocated_blocks().for_each([&](net::Block24 block) {
    if (++checked > 1000) return;
    const auto as_index = plan().as_of(block);
    ASSERT_TRUE(as_index);
    const auto country = plan().geodb().country_of(block);
    ASSERT_TRUE(country);
    EXPECT_EQ(*country, plan().as_at(*as_index).country);
  });
}

TEST_F(AddressPlanTest, RouteViewsUnionApproximatesRib) {
  const auto views = plan().make_route_views(0);
  EXPECT_EQ(views.dump_count(0), 12u);
  const auto& merged = views.daily_rib(0);
  // Each dump drops ~0.5%; the union of 12 should recover essentially all.
  EXPECT_GE(merged.size(), plan().rib().size() * 999 / 1000);
  EXPECT_LE(merged.size(), plan().rib().size());
}

TEST_F(AddressPlanTest, UniverseMaskCoversAllocatedAndUnrouted) {
  const auto mask = plan().universe_mask();
  EXPECT_EQ(mask->size(), plan().slash8s().size() * 65536u);
  std::size_t checked = 0;
  plan().allocated_blocks().for_each([&](net::Block24 block) {
    if (++checked > 500) return;
    EXPECT_TRUE(mask->contains(block));
  });
  const net::Block24 unrouted(std::uint32_t{plan().unrouted_slash8s()[0]} << 16);
  EXPECT_TRUE(mask->contains(unrouted));
  EXPECT_FALSE(mask->contains(net::Block24(0x010000)));
}

TEST_F(AddressPlanTest, CountryWeightsShowUsDominance) {
  std::map<std::string, int> countries;
  for (const AsInfo& info : plan().ases()) ++countries[info.country];
  EXPECT_GT(countries["US"], 0);
  // US should be the plurality country given NA weighting.
  for (const auto& [country, count] : countries) {
    if (country != "US") {
      EXPECT_GE(countries["US"], count) << country;
    }
  }
}

TEST(AddressPlanConfig, RejectsBadSlash8Count) {
  SimConfig config = SimConfig::tiny();
  config.general_slash8s = 0;
  EXPECT_THROW(AddressPlan{config}, std::invalid_argument);
  config.general_slash8s = 99;
  EXPECT_THROW(AddressPlan{config}, std::invalid_argument);
}

}  // namespace
}  // namespace mtscope::sim
