#include "trie/block24_set.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/rng.hpp"

namespace mtscope::trie {
namespace {

using net::Block24;

TEST(Block24Set, InsertEraseContains) {
  Block24Set set;
  EXPECT_TRUE(set.empty());
  set.insert(Block24(100));
  set.insert(Block24(100));  // idempotent
  EXPECT_EQ(set.size(), 1u);
  EXPECT_TRUE(set.contains(Block24(100)));
  EXPECT_FALSE(set.contains(Block24(101)));
  set.erase(Block24(100));
  set.erase(Block24(100));  // idempotent
  EXPECT_TRUE(set.empty());
}

TEST(Block24Set, BoundaryIndices) {
  Block24Set set;
  set.insert(Block24(0));
  set.insert(Block24(Block24::kUniverseSize - 1));
  set.insert(Block24(63));
  set.insert(Block24(64));  // word boundary
  EXPECT_EQ(set.size(), 4u);
  EXPECT_TRUE(set.contains(Block24(0)));
  EXPECT_TRUE(set.contains(Block24(Block24::kUniverseSize - 1)));
}

TEST(Block24Set, SetOperations) {
  Block24Set a;
  Block24Set b;
  a.insert(Block24(1));
  a.insert(Block24(2));
  b.insert(Block24(2));
  b.insert(Block24(3));

  const Block24Set u = a | b;
  EXPECT_EQ(u.size(), 3u);
  const Block24Set i = a & b;
  EXPECT_EQ(i.size(), 1u);
  EXPECT_TRUE(i.contains(Block24(2)));
  const Block24Set d = a - b;
  EXPECT_EQ(d.size(), 1u);
  EXPECT_TRUE(d.contains(Block24(1)));
}

TEST(Block24Set, EqualityAndClear) {
  Block24Set a;
  Block24Set b;
  a.insert(Block24(9));
  b.insert(Block24(9));
  EXPECT_EQ(a, b);
  a.clear();
  EXPECT_TRUE(a.empty());
  EXPECT_FALSE(a == b);
}

TEST(Block24Set, ForEachAscending) {
  Block24Set set;
  set.insert(Block24(500));
  set.insert(Block24(3));
  set.insert(Block24(70000));
  std::vector<std::uint32_t> order;
  set.for_each([&](Block24 b) { order.push_back(b.index()); });
  EXPECT_EQ(order, (std::vector<std::uint32_t>{3, 500, 70000}));
  EXPECT_EQ(set.to_vector().size(), 3u);
}

class CountInRange : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CountInRange, AgreesWithBruteForce) {
  util::Rng rng(GetParam());
  Block24Set set;
  std::set<std::uint32_t> reference;
  for (int i = 0; i < 3000; ++i) {
    const auto idx = static_cast<std::uint32_t>(rng.uniform(1u << 18));
    set.insert(Block24(idx));
    reference.insert(idx);
  }
  EXPECT_EQ(set.size(), reference.size());

  for (int i = 0; i < 200; ++i) {
    std::uint32_t lo = static_cast<std::uint32_t>(rng.uniform(1u << 18));
    std::uint32_t hi = static_cast<std::uint32_t>(rng.uniform(1u << 18));
    if (lo > hi) std::swap(lo, hi);
    std::size_t brute = 0;
    for (auto it = reference.lower_bound(lo); it != reference.end() && *it <= hi; ++it) ++brute;
    EXPECT_EQ(set.count_in_range(lo, hi), brute) << lo << ".." << hi;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CountInRange, ::testing::Values(11, 22, 33));

TEST(Block24Set, CountInRangeEdgeCases) {
  Block24Set set;
  set.insert(Block24(10));
  set.insert(Block24(20));
  EXPECT_EQ(set.count_in_range(10, 10), 1u);  // single-element range
  EXPECT_EQ(set.count_in_range(11, 19), 0u);
  EXPECT_EQ(set.count_in_range(20, 5), 0u);   // inverted range
  EXPECT_EQ(set.count_in_range(0, Block24::kUniverseSize + 5), 2u);  // clamped
  EXPECT_EQ(set.count_in_range(Block24::kUniverseSize, Block24::kUniverseSize), 0u);
}

TEST(Block24Set, UnionRecountsCorrectly) {
  Block24Set a;
  Block24Set b;
  for (std::uint32_t i = 0; i < 1000; i += 2) a.insert(Block24(i));
  for (std::uint32_t i = 0; i < 1000; i += 3) b.insert(Block24(i));
  const std::size_t expected = [] {
    std::set<std::uint32_t> s;
    for (std::uint32_t i = 0; i < 1000; i += 2) s.insert(i);
    for (std::uint32_t i = 0; i < 1000; i += 3) s.insert(i);
    return s.size();
  }();
  EXPECT_EQ((a | b).size(), expected);
}

}  // namespace
}  // namespace mtscope::trie
