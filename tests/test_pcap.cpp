#include "net/pcap.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "net/headers.hpp"

namespace mtscope::net {
namespace {

TEST(Pcap, RoundTrip) {
  std::stringstream buffer;
  PcapWriter writer(buffer);
  const auto pkt1 = synthesize_packet(Ipv4Addr(1), Ipv4Addr(2), IpProto::kTcp, 10, 80,
                                      TcpFlags::kSyn, 40);
  const auto pkt2 = synthesize_packet(Ipv4Addr(3), Ipv4Addr(4), IpProto::kUdp, 53, 53, 0, 120);
  writer.write(1'000'001, pkt1);
  writer.write(2'500'000'123'456ull, pkt2);
  EXPECT_EQ(writer.packets_written(), 2u);

  auto read = read_pcap(buffer);
  ASSERT_TRUE(read.ok()) << read.error().to_string();
  ASSERT_EQ(read.value().size(), 2u);
  EXPECT_EQ(read.value()[0].timestamp_us, 1'000'001u);
  EXPECT_EQ(read.value()[0].data, pkt1);
  EXPECT_EQ(read.value()[1].timestamp_us, 2'500'000'123'456ull);
  EXPECT_EQ(read.value()[1].data, pkt2);

  // The payload must still be a parseable packet.
  EXPECT_TRUE(parse_packet(read.value()[1].data).ok());
}

TEST(Pcap, EmptyCapture) {
  std::stringstream buffer;
  PcapWriter writer(buffer);
  auto read = read_pcap(buffer);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read.value().empty());
}

TEST(Pcap, SnaplenTruncates) {
  std::stringstream buffer;
  PcapWriter writer(buffer, /*snaplen=*/16);
  const std::vector<std::uint8_t> big(100, 0xaa);
  writer.write(0, big);
  auto read = read_pcap(buffer);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read.value().size(), 1u);
  EXPECT_EQ(read.value()[0].data.size(), 16u);
}

TEST(Pcap, RejectsBadMagic) {
  std::stringstream buffer("\x01\x02\x03\x04more garbage here padding");
  auto read = read_pcap(buffer);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.error().code, "pcap.magic");
}

TEST(Pcap, RejectsTruncatedBody) {
  std::stringstream buffer;
  PcapWriter writer(buffer);
  writer.write(0, std::vector<std::uint8_t>(40, 1));
  std::string data = buffer.str();
  data.resize(data.size() - 10);  // cut the last packet short
  std::stringstream cut(data);
  auto read = read_pcap(cut);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.error().code, "pcap.truncated");
}

TEST(Pcap, RejectsEmptyStream) {
  std::stringstream buffer;
  EXPECT_FALSE(read_pcap(buffer).ok());
}

}  // namespace
}  // namespace mtscope::net
