#include "trie/prefix_trie.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "util/rng.hpp"

namespace mtscope::trie {
namespace {

using net::Ipv4Addr;
using net::Prefix;

Prefix p(const char* text) { return *Prefix::parse(text); }

TEST(PrefixTrie, InsertFindErase) {
  PrefixTrie<int> trie;
  EXPECT_TRUE(trie.empty());
  EXPECT_TRUE(trie.insert(p("10.0.0.0/8"), 1));
  EXPECT_FALSE(trie.insert(p("10.0.0.0/8"), 2));  // overwrite
  EXPECT_EQ(trie.size(), 1u);
  ASSERT_NE(trie.find(p("10.0.0.0/8")), nullptr);
  EXPECT_EQ(*trie.find(p("10.0.0.0/8")), 2);
  EXPECT_EQ(trie.find(p("10.0.0.0/9")), nullptr);
  EXPECT_TRUE(trie.erase(p("10.0.0.0/8")));
  EXPECT_FALSE(trie.erase(p("10.0.0.0/8")));
  EXPECT_TRUE(trie.empty());
}

TEST(PrefixTrie, RootPrefixStoresDefaultRoute) {
  PrefixTrie<int> trie;
  trie.insert(Prefix(), 42);
  const auto match = trie.longest_match(Ipv4Addr(0x12345678));
  ASSERT_TRUE(match);
  EXPECT_EQ(match->first.length(), 0);
  EXPECT_EQ(*match->second, 42);
}

TEST(PrefixTrie, LongestMatchPrefersSpecific) {
  PrefixTrie<int> trie;
  trie.insert(p("10.0.0.0/8"), 8);
  trie.insert(p("10.1.0.0/16"), 16);
  trie.insert(p("10.1.2.0/24"), 24);

  auto m = trie.longest_match(Ipv4Addr::from_octets(10, 1, 2, 3));
  ASSERT_TRUE(m);
  EXPECT_EQ(*m->second, 24);

  m = trie.longest_match(Ipv4Addr::from_octets(10, 1, 9, 9));
  ASSERT_TRUE(m);
  EXPECT_EQ(*m->second, 16);

  m = trie.longest_match(Ipv4Addr::from_octets(10, 200, 0, 1));
  ASSERT_TRUE(m);
  EXPECT_EQ(*m->second, 8);

  EXPECT_FALSE(trie.longest_match(Ipv4Addr::from_octets(11, 0, 0, 1)));
}

TEST(PrefixTrie, MatchesReturnsAllCoversLeastSpecificFirst) {
  PrefixTrie<int> trie;
  trie.insert(p("10.0.0.0/8"), 8);
  trie.insert(p("10.1.0.0/16"), 16);
  const auto all = trie.matches(Ipv4Addr::from_octets(10, 1, 0, 1));
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].first.length(), 8);
  EXPECT_EQ(all[1].first.length(), 16);
}

TEST(PrefixTrie, WalkVisitsEverythingInOrder) {
  PrefixTrie<int> trie;
  trie.insert(p("10.0.0.0/8"), 1);
  trie.insert(p("10.128.0.0/9"), 2);
  trie.insert(p("192.168.0.0/16"), 3);

  std::vector<Prefix> seen;
  trie.walk([&](const Prefix& prefix, const int&) { seen.push_back(prefix); });
  ASSERT_EQ(seen.size(), 3u);
  // Pre-order: parent before child, lexicographic by bit path.
  EXPECT_EQ(seen[0], p("10.0.0.0/8"));
  EXPECT_EQ(seen[1], p("10.128.0.0/9"));
  EXPECT_EQ(seen[2], p("192.168.0.0/16"));
}

TEST(PrefixTrie, CoveredBy) {
  PrefixTrie<int> trie;
  trie.insert(p("10.0.0.0/8"), 1);
  trie.insert(p("10.64.0.0/16"), 2);
  trie.insert(p("10.64.1.0/24"), 3);
  trie.insert(p("11.0.0.0/8"), 4);

  const auto covered = trie.covered_by(p("10.64.0.0/16"));
  ASSERT_EQ(covered.size(), 2u);
  EXPECT_EQ(covered[0].second, 2);
  EXPECT_EQ(covered[1].second, 3);

  EXPECT_TRUE(trie.covered_by(p("172.16.0.0/12")).empty());
}

// Property test: longest_match agrees with a brute-force scan over random
// prefix sets, across several seeds.
class TrieVsBruteForce : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TrieVsBruteForce, LongestMatchAgrees) {
  util::Rng rng(GetParam());
  PrefixTrie<std::uint32_t> trie;
  std::vector<std::pair<Prefix, std::uint32_t>> reference;

  for (int i = 0; i < 500; ++i) {
    const int len = static_cast<int>(rng.uniform(25));  // 0..24
    const Prefix prefix =
        Prefix::canonical(Ipv4Addr(static_cast<std::uint32_t>(rng.next())), len);
    const auto value = static_cast<std::uint32_t>(i);
    const auto existing = std::find_if(reference.begin(), reference.end(),
                                       [&](const auto& e) { return e.first == prefix; });
    if (existing == reference.end()) {
      reference.emplace_back(prefix, value);
    } else {
      existing->second = value;
    }
    trie.insert(prefix, value);
  }
  EXPECT_EQ(trie.size(), reference.size());

  for (int i = 0; i < 2000; ++i) {
    const Ipv4Addr addr(static_cast<std::uint32_t>(rng.next()));
    std::optional<std::pair<Prefix, std::uint32_t>> best;
    for (const auto& [prefix, value] : reference) {
      if (prefix.contains(addr) && (!best || prefix.length() > best->first.length())) {
        best = {prefix, value};
      }
    }
    const auto got = trie.longest_match(addr);
    ASSERT_EQ(got.has_value(), best.has_value());
    if (best) {
      EXPECT_EQ(got->first, best->first);
      EXPECT_EQ(*got->second, best->second);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrieVsBruteForce, ::testing::Values(1, 2, 3, 17, 99));

TEST(PrefixSet, BasicMembership) {
  PrefixSet set;
  EXPECT_TRUE(set.insert(p("10.0.0.0/8")));
  EXPECT_FALSE(set.insert(p("10.0.0.0/8")));
  EXPECT_TRUE(set.contains(p("10.0.0.0/8")));
  EXPECT_FALSE(set.contains(p("10.0.0.0/9")));
  EXPECT_TRUE(set.covers(Ipv4Addr::from_octets(10, 9, 9, 9)));
  EXPECT_FALSE(set.covers(Ipv4Addr::from_octets(11, 0, 0, 0)));
}

TEST(PrefixSet, CoversBlockRequiresFullCoverage) {
  PrefixSet set;
  set.insert(p("10.0.0.0/25"));  // half a /24
  EXPECT_FALSE(set.covers(net::Block24::containing(Ipv4Addr::from_octets(10, 0, 0, 0))));
  set.insert(p("10.0.0.0/16"));
  EXPECT_TRUE(set.covers(net::Block24::containing(Ipv4Addr::from_octets(10, 0, 0, 0))));
}

TEST(PrefixSet, ToVector) {
  PrefixSet set;
  set.insert(p("10.0.0.0/8"));
  set.insert(p("192.168.0.0/16"));
  const auto v = set.to_vector();
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], p("10.0.0.0/8"));
}

}  // namespace
}  // namespace mtscope::trie
