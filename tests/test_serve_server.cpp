// The TCP query server end to end over real loopback sockets: protocol
// correctness (verdict lines byte-identical to the CLI's, CRLF/padding
// tolerance, invalid-line replies), concurrency (many clients with
// interleaved partial writes), robustness (slow-reader back-pressure and
// disconnect, overlong-line rejection, over-capacity rejects), SIGHUP hot
// reload under load with verdict continuity, and the SIGTERM graceful
// drain contract (every queued reply flushed, exit 0).  The MultiReactor
// suite covers the SO_REUSEPORT fan-out: accept distribution, epoch swap
// under cross-reactor load, drain with backlogs on several reactors, and
// the deterministic per-reactor metrics merge.  Under
// MTSCOPE_SANITIZE=thread/address this binary doubles as the
// tsan_server_smoke / asan_server_smoke sanitizer ctests.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "ingest/publish.hpp"
#include "serve/snapshot.hpp"
#include "serve/telescope_index.hpp"
#include "serve/wire.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace mtscope {
namespace {

using namespace std::chrono_literals;
using serve::BlockClass;
using serve::BlockEntry;
using serve::PrefixEntry;
using serve::TelescopeSnapshot;

// ---------------------------------------------------------------------------
// Hand-built snapshots: two variants classifying the same probe blocks
// differently, so a reload flips observable verdicts.

TelescopeSnapshot make_snapshot(int variant) {
  TelescopeSnapshot snap;
  snap.meta.seed = 1;
  snap.meta.created_unix_s = 1'700'000'000;
  snap.meta.source = variant == 0 ? "test v1" : "test v2";
  snap.prefixes.push_back(PrefixEntry{0x0a000000u, 65001, 8});   // 10.0.0.0/8
  snap.prefixes.push_back(PrefixEntry{0xc0a80000u, 65002, 16});  // 192.168.0.0/16

  const auto block = [](std::uint8_t a, std::uint8_t b, std::uint8_t c) {
    return net::Block24::containing(net::Ipv4Addr::from_octets(a, b, c, 0));
  };
  if (variant == 0) {
    snap.blocks.push_back(BlockEntry::make(block(10, 0, 0), BlockClass::kDark, 0));
    snap.blocks.push_back(BlockEntry::make(block(10, 0, 1), BlockClass::kUnclean, 0));
    snap.blocks.push_back(BlockEntry::make(block(192, 168, 5), BlockClass::kGray, 1));
    snap.blocks.push_back(
        BlockEntry::make(block(203, 0, 113), BlockClass::kDark, BlockEntry::kNoPrefix));
    snap.dark_count = 2;
    snap.unclean_count = 1;
    snap.gray_count = 1;
  } else {
    // Every shared block flips class; 203.0.113/24 disappears and
    // 198.51.100/24 appears, so misses flip too.
    snap.blocks.push_back(BlockEntry::make(block(10, 0, 0), BlockClass::kGray, 0));
    snap.blocks.push_back(BlockEntry::make(block(10, 0, 1), BlockClass::kDark, 0));
    snap.blocks.push_back(BlockEntry::make(block(192, 168, 5), BlockClass::kDark, 1));
    snap.blocks.push_back(
        BlockEntry::make(block(198, 51, 100), BlockClass::kUnclean, BlockEntry::kNoPrefix));
    snap.dark_count = 2;
    snap.unclean_count = 1;
    snap.gray_count = 1;
  }
  return snap;
}

std::string snapshot_file(const std::string& name, int variant) {
  const std::string path = ::testing::TempDir() + "serve_" + name + ".snap";
  const auto written = serve::write_snapshot_file(make_snapshot(variant), path);
  EXPECT_TRUE(written.ok()) << written.error().to_string();
  return path;
}

/// Expected reply line for `ip` under snapshot `variant`, computed with
/// the same index + formatter the server uses.
std::string expected_line(const std::string& ip, int variant) {
  static std::map<int, std::unique_ptr<serve::TelescopeIndex>> cache;
  auto& index = cache[variant];
  if (!index) index = std::make_unique<serve::TelescopeIndex>(make_snapshot(variant));
  const auto addr = net::Ipv4Addr::parse(ip);
  EXPECT_TRUE(addr.has_value()) << ip;
  return serve::format_verdict(*addr, index->lookup(*addr));
}

// ---------------------------------------------------------------------------
// A blocking loopback client with receive/send timeouts so a server bug
// fails the test instead of hanging it.

struct Client {
  int fd = -1;

  explicit Client(std::uint16_t port) {
    fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return;
    const timeval timeout{10, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      fd = -1;
    }
  }

  ~Client() {
    if (fd >= 0) ::close(fd);
  }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  [[nodiscard]] bool connected() const { return fd >= 0; }

  /// False on any send failure (EPIPE/ECONNRESET after a server kick).
  bool send_all(std::string_view data) {
    std::size_t sent = 0;
    while (sent < data.size()) {
      const auto n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  void shutdown_write() const { ::shutdown(fd, SHUT_WR); }

  /// Read until `count` newline-terminated lines arrive; stops early on
  /// EOF/timeout.  Lines come back without the trailing newline.
  std::vector<std::string> read_lines(std::size_t count) {
    std::vector<std::string> lines;
    std::string buffer;
    char chunk[4096];
    while (lines.size() < count) {
      const auto n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) break;
      buffer.append(chunk, static_cast<std::size_t>(n));
      std::size_t start = 0;
      for (std::size_t nl; (nl = buffer.find('\n', start)) != std::string::npos;
           start = nl + 1) {
        lines.push_back(buffer.substr(start, nl - start));
      }
      buffer.erase(0, start);
    }
    return lines;
  }

  /// True if the peer closed (recv 0) or reset the connection.
  bool reads_eof() {
    char chunk[4096];
    for (;;) {
      const auto n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n == 0) return true;
      if (n < 0) return errno == ECONNRESET || errno == EPIPE;
    }
  }
};

// ---------------------------------------------------------------------------
// Server-on-a-thread fixture.

struct RunningServer {
  std::unique_ptr<serve::QueryServer> server;
  std::thread thread;
  int exit_code = -1;

  explicit RunningServer(serve::ServerConfig config,
                         obs::MetricsRegistry* metrics = nullptr) {
    server = std::make_unique<serve::QueryServer>(std::move(config), metrics);
    const auto started = server->start();
    EXPECT_TRUE(started.ok()) << started.error().to_string();
    if (started.ok()) {
      thread = std::thread([this] { exit_code = server->run(); });
    }
  }

  ~RunningServer() { stop(); }

  [[nodiscard]] std::uint16_t port() const { return server->port(); }

  void stop() {
    if (thread.joinable()) {
      server->request_stop();
      thread.join();
    }
  }
};

bool wait_until(const std::function<bool()>& predicate,
                std::chrono::milliseconds deadline = 10s) {
  const auto give_up = std::chrono::steady_clock::now() + deadline;
  while (std::chrono::steady_clock::now() < give_up) {
    if (predicate()) return true;
    std::this_thread::sleep_for(2ms);
  }
  return predicate();
}

serve::ServerConfig test_config(const std::string& snapshot_path) {
  serve::ServerConfig config;
  config.snapshot_path = snapshot_path;
  config.port = 0;  // kernel-assigned; read back via server.port()
  config.idle_timeout_ms = 10'000;
  return config;
}

// ---------------------------------------------------------------------------
// Protocol formatting.

TEST(FormatVerdict, MatchesPrintVerdictShape) {
  const auto addr = *net::Ipv4Addr::parse("10.0.0.7");
  EXPECT_EQ(serve::format_verdict(addr, std::nullopt), "10.0.0.7 none");

  serve::TelescopeIndex::Verdict verdict;
  verdict.block = net::Block24::containing(addr);
  verdict.cls = BlockClass::kDark;
  verdict.prefix = net::Prefix(net::Ipv4Addr(0x0a000000u), 8);
  verdict.origin = net::AsNumber(65001);
  EXPECT_EQ(serve::format_verdict(addr, verdict), "10.0.0.7 dark 10.0.0.0/8 AS65001");

  verdict.prefix.reset();
  verdict.origin.reset();
  EXPECT_EQ(serve::format_verdict(addr, verdict), "10.0.0.7 dark - -");
}

// ---------------------------------------------------------------------------
// Basic serving: one client, every line shape.

TEST(ServeServer, AnswersVerdictLinesIncludingCrlfAndPadding) {
  RunningServer rs(test_config(snapshot_file("basic", 0)));
  Client client(rs.port());
  ASSERT_TRUE(client.connected());

  // CRLF line, padded line, comment, blank, plain lines, and garbage: the
  // server must answer 5 request lines and skip the comment/blank.
  ASSERT_TRUE(client.send_all("10.0.0.7\r\n  192.168.5.9  \n# comment\n\n"
                              "203.0.113.1\n8.8.8.8\n+1.2.3.4\n"));
  const auto lines = client.read_lines(5);
  ASSERT_EQ(lines.size(), 5u);
  EXPECT_EQ(lines[0], expected_line("10.0.0.7", 0));
  EXPECT_EQ(lines[1], expected_line("192.168.5.9", 0));
  EXPECT_EQ(lines[2], expected_line("203.0.113.1", 0));
  EXPECT_EQ(lines[3], expected_line("8.8.8.8", 0));
  EXPECT_EQ(lines[4], "+1.2.3.4 invalid");

  // The fixture classifies for real, not vacuously.
  EXPECT_EQ(lines[0], "10.0.0.7 dark 10.0.0.0/8 AS65001");
  EXPECT_EQ(lines[1], "192.168.5.9 gray 192.168.0.0/16 AS65002");
  EXPECT_EQ(lines[2], "203.0.113.1 dark - -");
  EXPECT_EQ(lines[3], "8.8.8.8 none");

  const auto stats = rs.server->stats();
  EXPECT_EQ(stats.queries, 5u);
  EXPECT_EQ(stats.invalid, 1u);
  EXPECT_EQ(stats.connections, 1u);
}

TEST(ServeServer, PeerHalfCloseStillGetsEveryReply) {
  RunningServer rs(test_config(snapshot_file("halfclose", 0)));
  Client client(rs.port());
  ASSERT_TRUE(client.connected());
  std::string request;
  for (int i = 0; i < 100; ++i) request += "10.0.0." + std::to_string(i) + "\n";
  ASSERT_TRUE(client.send_all(request));
  client.shutdown_write();
  const auto lines = client.read_lines(100);
  ASSERT_EQ(lines.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(lines[static_cast<std::size_t>(i)],
              expected_line("10.0.0." + std::to_string(i), 0));
  }
  EXPECT_TRUE(client.reads_eof());
}

// ---------------------------------------------------------------------------
// Concurrency: many clients, interleaved partial writes.

TEST(ServeServer, ManyConcurrentClientsWithPartialWrites) {
  obs::MetricsRegistry metrics;
  RunningServer rs(test_config(snapshot_file("concurrent", 0)), &metrics);

  constexpr int kClients = 6;
  constexpr int kQueries = 200;

  // Precompute every client's request lines and expected replies on the
  // main thread — expected_line() builds indexes behind a non-thread-safe
  // cache, and the worker threads must stay pure socket I/O.
  std::vector<std::vector<std::string>> all_ips(kClients);
  std::vector<std::vector<std::string>> all_expected(kClients);
  for (int c = 0; c < kClients; ++c) {
    for (int q = 0; q < kQueries; ++q) {
      // A mix of hits, misses and per-client distinct hosts.
      const std::string host = std::to_string((c * 41 + q) % 256);
      const std::string ip = q % 3 == 0   ? "10.0.0." + host
                             : q % 3 == 1 ? "192.168.5." + host
                                          : "99." + host + ".0.1";  // always a miss
      all_ips[static_cast<std::size_t>(c)].push_back(ip + "\n");
      all_expected[static_cast<std::size_t>(c)].push_back(expected_line(ip, 0));
    }
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client client(rs.port());
      if (!client.connected()) {
        ++failures;
        return;
      }
      const auto& ips = all_ips[static_cast<std::size_t>(c)];
      const auto& expected = all_expected[static_cast<std::size_t>(c)];
      for (std::size_t q = 0; q < ips.size(); ++q) {
        const auto& line = ips[q];
        // Interleave partial writes: split every 4th line mid-address so
        // the server sees arbitrary TCP segmentation.
        if (q % 4 == 0 && line.size() > 3) {
          if (!client.send_all(std::string_view(line).substr(0, 3))) ++failures;
          std::this_thread::yield();
          if (!client.send_all(std::string_view(line).substr(3))) ++failures;
        } else if (!client.send_all(line)) {
          ++failures;
        }
      }
      const auto lines = client.read_lines(expected.size());
      if (lines.size() != expected.size()) {
        ++failures;
        return;
      }
      for (std::size_t q = 0; q < expected.size(); ++q) {
        if (lines[q] != expected[q]) ++failures;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);

  const auto stats = rs.server->stats();
  EXPECT_EQ(stats.queries, static_cast<std::uint64_t>(kClients) * kQueries);
  EXPECT_EQ(stats.connections, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(stats.invalid, 0u);

  rs.stop();
  EXPECT_EQ(metrics.counter_value("serve.server.queries"),
            static_cast<std::uint64_t>(kClients) * kQueries);
  EXPECT_EQ(metrics.counter_value("serve.server.connections"),
            static_cast<std::uint64_t>(kClients));
  const auto* timer = metrics.find_timer("serve.server.request_us");
  ASSERT_NE(timer, nullptr);
  EXPECT_EQ(timer->count(), static_cast<std::uint64_t>(kClients) * kQueries);
}

// ---------------------------------------------------------------------------
// Robustness: back-pressure, protocol violations, capacity.

TEST(ServeServer, SlowReaderIsBackpressuredThenDisconnected) {
  auto config = test_config(snapshot_file("slowreader", 0));
  config.max_pending_bytes = 8 * 1024;  // back-pressure kicks in early
  config.idle_timeout_ms = 300;         // and the stalled client dies fast
  RunningServer rs(std::move(config));

  Client slow(rs.port());
  ASSERT_TRUE(slow.connected());
  // ~1.5 MB of queries, never reading a reply: far beyond loopback socket
  // buffers plus the 8 KiB reply cap, so the server must stop reading and
  // then time the connection out.  The send may legitimately short-write
  // once the server pauses; that is the back-pressure being observed.
  std::string burst;
  for (int i = 0; i < 4096; ++i) burst += "10.0.0." + std::to_string(i % 256) + "\n";
  for (int i = 0; i < 32 && slow.send_all(burst); ++i) {
  }
  EXPECT_TRUE(wait_until([&] { return rs.server->stats().timeouts >= 1; }))
      << "slow reader was never disconnected";

  // The server remains healthy for well-behaved clients.
  Client fine(rs.port());
  ASSERT_TRUE(fine.connected());
  ASSERT_TRUE(fine.send_all("10.0.0.7\n"));
  const auto lines = fine.read_lines(1);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], expected_line("10.0.0.7", 0));
}

TEST(ServeServer, OverlongLineGetsOneInvalidReplyThenClose) {
  auto config = test_config(snapshot_file("overlong", 0));
  config.max_request_bytes = 128;
  RunningServer rs(std::move(config));

  Client client(rs.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_all(std::string(512, 'a')));  // no newline ever
  const auto lines = client.read_lines(1);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], std::string(64, 'a') + " invalid");
  EXPECT_TRUE(client.reads_eof());
  EXPECT_TRUE(wait_until([&] { return rs.server->stats().drops >= 1; }));

  // Counting contract (DESIGN.md §12): the one invalid reply produced for
  // the overlong line counts as a query AND an invalid AND a drop — the
  // pre-fix code skipped the query bump on this path.
  const auto stats = rs.server->stats();
  EXPECT_EQ(stats.queries, 1u);
  EXPECT_EQ(stats.invalid, 1u);
  EXPECT_EQ(stats.drops, 1u);
}

TEST(ServeServer, RequestBytesCapIsExactAtTheBoundary) {
  auto config = test_config(snapshot_file("capboundary", 0));
  config.max_request_bytes = 64;
  RunningServer rs(std::move(config));

  // A line of exactly max_request_bytes (before the newline) is legal:
  // leading padding is trimmed by the parser, so this answers normally.
  {
    Client client(rs.port());
    ASSERT_TRUE(client.connected());
    std::string line(64 - 8, ' ');
    line += "10.0.0.7";  // 64 bytes exactly, then the terminator
    ASSERT_TRUE(client.send_all(line + "\n"));
    const auto lines = client.read_lines(1);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0], expected_line("10.0.0.7", 0));
  }

  // Exactly max_request_bytes buffered with no newline yet must NOT be
  // killed — the limit is on the line, and the line may still terminate.
  // The pre-fix cap let a client sit at max + 16 KiB - 1 instead.
  {
    Client client(rs.port());
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.send_all(std::string(64 - 8, ' ')));
    std::this_thread::sleep_for(20ms);
    ASSERT_TRUE(client.send_all("10.0.0.7\n"));
    const auto lines = client.read_lines(1);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0], expected_line("10.0.0.7", 0));
  }

  // One byte over — with or without a newline — is rejected and closed,
  // even when the whole overlong line arrives in a single chunk (the
  // pre-fix per-chunk check missed a complete line with its newline).
  {
    Client client(rs.port());
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.send_all(std::string(65, 'b') + "\n"));
    const auto lines = client.read_lines(1);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0], std::string(64, 'b') + " invalid");
    EXPECT_TRUE(client.reads_eof());
  }
  EXPECT_TRUE(wait_until([&] { return rs.server->stats().drops >= 1; }));
  EXPECT_EQ(rs.server->stats().drops, 1u);
}

TEST(ServeServer, ConnectionsBeyondMaxConnsAreDropped) {
  auto config = test_config(snapshot_file("capacity", 0));
  config.max_conns = 2;
  RunningServer rs(std::move(config));

  Client first(rs.port());
  Client second(rs.port());
  ASSERT_TRUE(first.connected());
  ASSERT_TRUE(second.connected());
  // Confirm both are established server-side before the third knocks.
  ASSERT_TRUE(first.send_all("10.0.0.1\n"));
  ASSERT_TRUE(second.send_all("10.0.0.2\n"));
  ASSERT_EQ(first.read_lines(1).size(), 1u);
  ASSERT_EQ(second.read_lines(1).size(), 1u);

  Client third(rs.port());
  ASSERT_TRUE(third.connected());  // accepted by the kernel...
  EXPECT_TRUE(third.reads_eof());  // ...closed at once by the server
  EXPECT_TRUE(wait_until([&] { return rs.server->stats().drops >= 1; }));
  EXPECT_EQ(rs.server->stats().connections, 2u);
}

// ---------------------------------------------------------------------------
// Hot reload: SIGHUP under load, verdict continuity.

TEST(ServeServer, SighupReloadUnderLoadKeepsEveryVerdictValid) {
  const std::string path = snapshot_file("reload", 0);
  RunningServer rs(test_config(path));
  rs.server->install_signal_handlers();

  // Probes whose verdicts all differ between the two snapshot variants.
  const std::vector<std::string> probes = {"10.0.0.7", "10.0.1.9", "192.168.5.1",
                                           "203.0.113.5", "198.51.100.2"};
  std::vector<std::string> valid_old;
  std::vector<std::string> valid_new;
  for (const auto& ip : probes) {
    valid_old.push_back(expected_line(ip, 0));
    valid_new.push_back(expected_line(ip, 1));
    ASSERT_NE(valid_old.back(), valid_new.back()) << ip;
  }

  std::atomic<bool> reloaded{false};
  std::atomic<int> failures{0};
  std::atomic<std::uint64_t> total_replies{0};
  std::atomic<std::uint64_t> new_epoch_replies{0};

  constexpr int kClients = 4;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      Client client(rs.port());
      if (!client.connected()) {
        ++failures;
        return;
      }
      std::string batch;
      for (const auto& ip : probes) batch += ip + "\n";
      // Keep querying until the reload has landed, then two more batches
      // so post-swap traffic is guaranteed to be observed.
      int after = 0;
      while (after < 2) {
        if (reloaded.load()) ++after;
        if (!client.send_all(batch)) {
          ++failures;
          return;
        }
        const auto lines = client.read_lines(probes.size());
        if (lines.size() != probes.size()) {
          ++failures;
          return;
        }
        for (std::size_t i = 0; i < lines.size(); ++i) {
          // Continuity: every reply is a complete verdict from either
          // epoch — never a torn, empty or misrouted line.
          if (lines[i] == valid_new[i]) {
            ++new_epoch_replies;
          } else if (lines[i] != valid_old[i]) {
            ++failures;
          }
          ++total_replies;
        }
      }
    });
  }

  // Let load build, swap the file, deliver a real SIGHUP.
  std::this_thread::sleep_for(50ms);
  {
    const auto written = serve::write_snapshot_file(make_snapshot(1), path);
    ASSERT_TRUE(written.ok()) << written.error().to_string();
  }
  ASSERT_EQ(::kill(::getpid(), SIGHUP), 0);
  ASSERT_TRUE(wait_until([&] { return rs.server->manager().epoch() == 2; }))
      << "SIGHUP did not trigger a reload";
  reloaded.store(true);

  for (auto& thread : clients) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(total_replies.load(), static_cast<std::uint64_t>(kClients) * probes.size() * 2);
  // The post-reload batches must answer from the new epoch.
  EXPECT_GE(new_epoch_replies.load(), static_cast<std::uint64_t>(kClients) * probes.size());
  EXPECT_EQ(rs.server->stats().reloads, 1u);
  EXPECT_EQ(rs.server->stats().reload_failures, 0u);
}

TEST(ServeServer, FailedReloadKeepsTheOldEpochServing) {
  const std::string path = snapshot_file("badreload", 0);
  RunningServer rs(test_config(path));

  // Corrupt the file, then ask for a reload: the swap must be refused.
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("this is not a snapshot", f);
    std::fclose(f);
  }
  rs.server->request_reload();
  ASSERT_TRUE(wait_until([&] { return rs.server->stats().reload_failures >= 1; }));
  EXPECT_EQ(rs.server->manager().epoch(), 1u);
  EXPECT_EQ(rs.server->stats().reloads, 0u);

  Client client(rs.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_all("10.0.0.7\n"));
  const auto lines = client.read_lines(1);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], expected_line("10.0.0.7", 0));
}

// ---------------------------------------------------------------------------
// Watch mode: the zero-touch publish pipeline's read side.  The watcher
// must pick up an atomic publish without any signal, refuse a corrupt one
// exactly once (no retry hot-loop), and never even attempt a reload for a
// torn publish that left the target untouched.

TEST(ServeServer, WatchModeSurvivesFaultyPublishesAndPicksUpTheGoodOne) {
  const std::string path = snapshot_file("watchfault", 0);
  auto config = test_config(path);
  config.watch_interval_ms = 10;
  RunningServer rs(std::move(config));
  ASSERT_EQ(rs.server->manager().epoch(), 1u);

  // A torn publish never touches the target: the watcher must see nothing
  // to do.  (ingest::publish_snapshot stages through <path>.tmp and the
  // injected fault aborts before the rename.)
  {
    ingest::PublishFaults faults;
    faults.truncate_after_bytes = 10;
    const auto torn = ingest::publish_snapshot(make_snapshot(1), path, &faults);
    ASSERT_FALSE(torn.ok());
    EXPECT_EQ(torn.error().code, "publish.torn");
  }
  std::this_thread::sleep_for(100ms);  // several watch intervals
  EXPECT_EQ(rs.server->manager().epoch(), 1u);
  EXPECT_EQ(rs.server->stats().reload_failures, 0u) << "torn publish reached the watcher";

  // A silently corrupted publish does swap the file, so the watcher tries,
  // the snapshot CRCs refuse it, and the old epoch keeps serving.  The
  // failure must be counted exactly once: the watcher re-arms on the new
  // signature instead of retrying the same bad file every interval.
  {
    ingest::PublishFaults faults;
    faults.corrupt_first_byte = true;
    const auto corrupt = ingest::publish_snapshot(make_snapshot(1), path, &faults);
    ASSERT_TRUE(corrupt.ok()) << corrupt.error().to_string();
  }
  ASSERT_TRUE(wait_until([&] { return rs.server->stats().reload_failures >= 1; }));
  EXPECT_EQ(rs.server->manager().epoch(), 1u);
  std::this_thread::sleep_for(100ms);
  EXPECT_EQ(rs.server->stats().reload_failures, 1u) << "watcher hot-looped on the bad file";

  // Old epoch still answering, byte-for-byte.
  {
    Client client(rs.port());
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.send_all("10.0.0.7\n"));
    const auto lines = client.read_lines(1);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0], expected_line("10.0.0.7", 0));
  }

  // Recovery: a clean atomic publish is picked up with no signal at all.
  {
    const auto published = ingest::publish_snapshot(make_snapshot(1), path);
    ASSERT_TRUE(published.ok()) << published.error().to_string();
  }
  ASSERT_TRUE(wait_until([&] { return rs.server->manager().epoch() == 2; }))
      << "watcher never picked up the clean publish";
  EXPECT_EQ(rs.server->stats().reloads, 1u);
  EXPECT_EQ(rs.server->stats().reload_failures, 1u);

  Client client(rs.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_all("10.0.0.7\n"));
  const auto lines = client.read_lines(1);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], expected_line("10.0.0.7", 1));
}

// ---------------------------------------------------------------------------
// Graceful drain: SIGTERM flushes the reply backlog and run() exits 0.

TEST(ServeServer, SigtermDrainsPendingRepliesAndExitsZero) {
  auto config = test_config(snapshot_file("drain", 0));
  config.max_pending_bytes = 4 * 1024 * 1024;  // answer everything, queue freely
  RunningServer rs(std::move(config));
  rs.server->install_signal_handlers();

  constexpr int kQueries = 20'000;  // ~600 KB of replies, beyond socket buffers
  Client client(rs.port());
  ASSERT_TRUE(client.connected());
  std::string burst;
  burst.reserve(static_cast<std::size_t>(kQueries) * 12);
  for (int i = 0; i < kQueries; ++i) {
    burst += "10.0." + std::to_string(i % 2) + "." + std::to_string(i % 256) + "\n";
  }
  ASSERT_TRUE(client.send_all(burst));

  // Wait until the server has answered every request (most replies are
  // still queued because this client is not reading), then SIGTERM.
  ASSERT_TRUE(wait_until([&] { return rs.server->stats().queries >= kQueries; }))
      << "server answered " << rs.server->stats().queries << " of " << kQueries;
  ASSERT_EQ(::kill(::getpid(), SIGTERM), 0);

  const auto lines = client.read_lines(kQueries);
  EXPECT_EQ(lines.size(), static_cast<std::size_t>(kQueries));
  EXPECT_TRUE(client.reads_eof());

  rs.thread.join();
  EXPECT_EQ(rs.exit_code, 0);

  // The listener is gone: fresh connections are refused.
  Client late(rs.port());
  EXPECT_FALSE(late.connected());
}

// ---------------------------------------------------------------------------
// Invalid-echo sanitization: the server must never reflect raw binary or
// control characters back onto the wire.

TEST(SanitizedEcho, ReplacesNonPrintableBytesAndTruncates) {
  std::string out;
  serve::append_sanitized_echo(out, "plain.token", 64);
  EXPECT_EQ(out, "plain.token");

  out.clear();
  serve::append_sanitized_echo(out, std::string_view("\x01\x02 ok \x7f\xff\n\t", 10), 64);
  EXPECT_EQ(out, ".. ok ....");

  out.clear();  // the limit truncates before sanitizing
  serve::append_sanitized_echo(out, std::string(100, 'a') + "\x03", 8);
  EXPECT_EQ(out, "aaaaaaaa");

  out.clear();  // boundary bytes: 0x1f/0x7f masked, 0x20/0x7e kept
  serve::append_sanitized_echo(out, std::string_view("\x1f\x20\x7e\x7f", 4), 64);
  EXPECT_EQ(out, ". ~.");
}

TEST(ServeServer, GarbageRequestLinesAreEchoedSanitized) {
  RunningServer rs(test_config(snapshot_file("garbage", 0)));
  Client client(rs.port());
  ASSERT_TRUE(client.connected());

  // Control characters, high bytes, and an ANSI escape attempt — each an
  // unparseable line the server answers with a sanitized echo.  The \x1b
  // would re-style the terminal of anyone eyeballing the stream with nc.
  ASSERT_TRUE(client.send_all(std::string_view("\x01garbage\x02\n", 10)));
  ASSERT_TRUE(client.send_all(std::string_view("\x1b[31mred\n", 9)));
  ASSERT_TRUE(client.send_all(std::string_view("\xde\xad\xbe\xef\n", 5)));
  const auto lines = client.read_lines(3);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], ".garbage. invalid");
  EXPECT_EQ(lines[1], ".[31mred invalid");
  EXPECT_EQ(lines[2], ".... invalid");
  EXPECT_EQ(rs.server->stats().invalid, 3u);
}

TEST(ServeServer, OverlongBinaryLineEchoIsSanitized) {
  auto config = test_config(snapshot_file("overlongbin", 0));
  config.max_request_bytes = 128;
  RunningServer rs(std::move(config));

  Client client(rs.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_all(std::string(512, '\x02')));  // no newline ever
  const auto lines = client.read_lines(1);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], std::string(64, '.') + " invalid");
  EXPECT_TRUE(client.reads_eof());
}

// ---------------------------------------------------------------------------
// Write fairness: one connection's reply backlog must not monopolize the
// reactor.  Every flush is capped at max_flush_bytes_per_event, so other
// ready connections get service between the backlog's EPOLLOUT rounds.

TEST(ServeServer, BackloggedConnectionDoesNotStarveOthers) {
  auto config = test_config(snapshot_file("fairness", 0));
  config.max_pending_bytes = 4 * 1024 * 1024;     // answer everything, queue freely
  config.max_flush_bytes_per_event = 1024;        // tiny cap: many partial flushes
  RunningServer rs(std::move(config));

  // ~600 KB of replies into a client that never reads: far beyond the
  // loopback socket buffers, so a large pending backlog builds up and
  // every flush toward it hits the cap.
  constexpr int kBurst = 20'000;
  Client hog(rs.port());
  ASSERT_TRUE(hog.connected());
  std::string burst;
  burst.reserve(static_cast<std::size_t>(kBurst) * 12);
  for (int i = 0; i < kBurst; ++i) {
    burst += "10.0." + std::to_string(i % 2) + "." + std::to_string(i % 256) + "\n";
  }
  ASSERT_TRUE(hog.send_all(burst));
  ASSERT_TRUE(wait_until([&] { return rs.server->stats().queries >= kBurst; }));

  // With the backlog stalled mid-drain, a well-behaved client must still
  // get prompt answers (pre-fix, flush_output looped to EAGAIN first).
  const auto t0 = std::chrono::steady_clock::now();
  Client probe(rs.port());
  ASSERT_TRUE(probe.connected());
  ASSERT_TRUE(probe.send_all("10.0.0.7\n"));
  const auto lines = probe.read_lines(1);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], expected_line("10.0.0.7", 0));
  EXPECT_LT(elapsed, 2s) << "probe starved behind the backlogged connection";
  EXPECT_GT(rs.server->stats().partial_flushes, 0u)
      << "the fairness cap never engaged - the backlog was flushed unbounded";

  // The hog eventually drains fine once it starts reading.
  const auto drained = hog.read_lines(kBurst);
  EXPECT_EQ(drained.size(), static_cast<std::size_t>(kBurst));
}

// ---------------------------------------------------------------------------
// Coarse idle sweep: deadlines are checked on a sweep cadence
// (idle_timeout / 4), not per wakeup — a silent connection must still be
// retired, no sooner than the timeout and not much later than timeout +
// cadence.

TEST(ServeServer, CoarseSweepRetiresIdleConnectionWithinOneCadence) {
  auto config = test_config(snapshot_file("coarsesweep", 0));
  config.idle_timeout_ms = 200;
  RunningServer rs(std::move(config));

  const auto t0 = std::chrono::steady_clock::now();
  Client idle(rs.port());
  ASSERT_TRUE(idle.connected());
  EXPECT_TRUE(idle.reads_eof()) << "idle connection was never retired";
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_GE(elapsed.count(), 200) << "retired before its idle timeout";
  EXPECT_LT(elapsed.count(), 5'000) << "sweep cadence missed by an order of magnitude";
  EXPECT_EQ(rs.server->stats().timeouts, 1u);
}

// ---------------------------------------------------------------------------
// Multi-reactor integration: accept distribution, hot reload under
// cross-reactor load, and drain with backlogs on several reactors.

TEST(MultiReactor, AcceptsSpreadAcrossReactors) {
  auto config = test_config(snapshot_file("spread", 0));
  config.reactors = 2;
  RunningServer rs(std::move(config));

  constexpr int kConns = 32;
  std::vector<std::unique_ptr<Client>> clients;
  for (int i = 0; i < kConns; ++i) {
    clients.push_back(std::make_unique<Client>(rs.port()));
    ASSERT_TRUE(clients.back()->connected());
  }
  // Each proves it is established server-side (accept4 has run).
  for (int i = 0; i < kConns; ++i) {
    ASSERT_TRUE(clients[static_cast<std::size_t>(i)]->send_all("10.0.0.7\n"));
    ASSERT_EQ(clients[static_cast<std::size_t>(i)]->read_lines(1).size(), 1u);
  }

  const auto per_reactor = rs.server->reactor_connections();
  ASSERT_EQ(per_reactor.size(), 2u);
  EXPECT_EQ(per_reactor[0] + per_reactor[1], static_cast<std::uint64_t>(kConns));
  // SO_REUSEPORT hashes the 4-tuple across listeners; 32 connections all
  // landing on one of two reactors has probability 2^-31.
  EXPECT_GT(per_reactor[0], 0u);
  EXPECT_GT(per_reactor[1], 0u);
  EXPECT_EQ(rs.server->stats().connections, static_cast<std::uint64_t>(kConns));
}

TEST(MultiReactor, ReloadUnderCrossReactorLoadDropsNothing) {
  const std::string path = snapshot_file("xreload", 0);
  auto config = test_config(path);
  config.reactors = 3;
  RunningServer rs(std::move(config));

  constexpr int kClients = 6;
  constexpr int kQueries = 300;
  // Precomputed on the main thread: expected_line()'s cache is not
  // thread-safe.
  const std::string before = expected_line("10.0.0.7", 0);
  const std::string after = expected_line("10.0.0.7", 1);
  ASSERT_NE(before, after);

  std::atomic<int> completed{0};
  std::atomic<int> failures{0};
  std::atomic<int> saw_new_epoch{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&] {
      Client client(rs.port());
      if (!client.connected()) {
        ++failures;
        return;
      }
      bool flipped = false;
      for (int q = 0; q < kQueries; ++q) {
        if (!client.send_all("10.0.0.7\n")) {
          ++failures;
          return;
        }
        const auto lines = client.read_lines(1);
        if (lines.size() != 1) {
          ++failures;  // a dropped query
          return;
        }
        if (lines[0] == after) {
          flipped = true;
        } else if (lines[0] != before || flipped) {
          // Wrong bytes, or the epoch went backwards on this connection.
          ++failures;
        }
        ++completed;
      }
      if (flipped) ++saw_new_epoch;
    });
  }

  // Let every reactor serve under load, then swap the snapshot mid-flight.
  while (completed.load() < kClients * kQueries / 3) std::this_thread::yield();
  {
    const auto written = serve::write_snapshot_file(make_snapshot(1), path);
    ASSERT_TRUE(written.ok()) << written.error().to_string();
  }
  rs.server->request_reload();

  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(completed.load(), kClients * kQueries) << "queries were dropped";
  EXPECT_EQ(rs.server->manager().epoch(), 2u);
  EXPECT_EQ(rs.server->stats().reloads, 1u);
  EXPECT_EQ(rs.server->stats().queries,
            static_cast<std::uint64_t>(kClients) * kQueries);
  // The swap landed while clients were mid-conversation on every reactor;
  // at least one connection must have observed it live (the load pacing
  // above makes "all finished before the reload" effectively impossible).
  EXPECT_GT(saw_new_epoch.load(), 0);

  // Post-reload, a fresh connection (hashed to whichever reactor) serves
  // the new epoch exactly.
  for (int i = 0; i < 3; ++i) {
    Client client(rs.port());
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.send_all("10.0.0.7\n"));
    const auto lines = client.read_lines(1);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0], after);
  }
}

TEST(MultiReactor, DrainFlushesBacklogsOnEveryReactor) {
  auto config = test_config(snapshot_file("xdrain", 0));
  config.reactors = 3;
  config.max_pending_bytes = 4 * 1024 * 1024;  // answer everything, queue freely
  RunningServer rs(std::move(config));

  // Six bursty clients spread across the three listeners, none reading:
  // every reactor ends up with queued reply backlogs when the stop lands.
  constexpr int kClients = 6;
  constexpr int kQueries = 5'000;  // ~150 KB of replies per client
  std::vector<std::unique_ptr<Client>> clients;
  std::string burst;
  burst.reserve(static_cast<std::size_t>(kQueries) * 12);
  for (int i = 0; i < kQueries; ++i) {
    burst += "10.0." + std::to_string(i % 2) + "." + std::to_string(i % 256) + "\n";
  }
  for (int c = 0; c < kClients; ++c) {
    clients.push_back(std::make_unique<Client>(rs.port()));
    ASSERT_TRUE(clients.back()->connected());
    ASSERT_TRUE(clients.back()->send_all(burst));
  }
  ASSERT_TRUE(wait_until([&] {
    return rs.server->stats().queries >=
           static_cast<std::uint64_t>(kClients) * kQueries;
  })) << "server answered " << rs.server->stats().queries << " queries";

  rs.server->request_stop();
  for (auto& client : clients) {
    const auto lines = client->read_lines(kQueries);
    EXPECT_EQ(lines.size(), static_cast<std::size_t>(kQueries));
    EXPECT_TRUE(client->reads_eof());
  }
  rs.thread.join();
  EXPECT_EQ(rs.exit_code, 0);

  const auto per_reactor = rs.server->reactor_connections();
  std::uint64_t total = 0;
  for (const auto n : per_reactor) total += n;
  EXPECT_EQ(total, static_cast<std::uint64_t>(kClients));
}

TEST(MultiReactor, MetricsMergeDeterministicallyAcrossReactors) {
  obs::MetricsRegistry metrics;
  auto config = test_config(snapshot_file("xmetrics", 0));
  config.reactors = 2;
  RunningServer rs(std::move(config), &metrics);

  constexpr int kClients = 8;
  constexpr int kQueries = 50;
  for (int c = 0; c < kClients; ++c) {
    Client client(rs.port());
    ASSERT_TRUE(client.connected());
    for (int q = 0; q < kQueries; ++q) {
      ASSERT_TRUE(client.send_all("10.0.0.7\n"));
      ASSERT_EQ(client.read_lines(1).size(), 1u);
    }
  }

  rs.stop();
  // Totals are exact regardless of how REUSEPORT split the work.
  EXPECT_EQ(metrics.counter_value("serve.server.queries"),
            static_cast<std::uint64_t>(kClients) * kQueries);
  EXPECT_EQ(metrics.counter_value("serve.server.connections"),
            static_cast<std::uint64_t>(kClients));
  const auto* timer = metrics.find_timer("serve.server.request_us");
  ASSERT_NE(timer, nullptr);
  EXPECT_EQ(timer->count(), static_cast<std::uint64_t>(kClients) * kQueries);
}

// ---------------------------------------------------------------------------
// MTBIN: the binary protocol negotiated by preamble on the same port
// (DESIGN.md §12).  Framing, negotiation edge cases, the counting
// contract, live corruption robustness, and the line/binary differential.

namespace wire = serve::wire;

/// Read exactly `want` bytes (or until EOF/timeout).
std::string read_exact(Client& client, std::size_t want) {
  std::string data;
  char chunk[4096];
  while (data.size() < want) {
    const auto n =
        ::recv(client.fd, chunk, std::min(sizeof(chunk), want - data.size()), 0);
    if (n <= 0) break;
    data.append(chunk, static_cast<std::size_t>(n));
  }
  return data;
}

/// Read and decode `count` response frames; stops early on EOF/timeout or
/// an undecodable frame.
std::vector<wire::Response> read_frames(Client& client, std::size_t count) {
  const auto data = read_exact(client, count * wire::kResponseSize);
  std::vector<wire::Response> frames;
  std::span<const std::uint8_t> bytes(reinterpret_cast<const std::uint8_t*>(data.data()),
                                      data.size());
  while (bytes.size() >= wire::kResponseSize) {
    const auto decoded = wire::decode_response(bytes);
    EXPECT_TRUE(decoded.ok()) << decoded.error().to_string();
    if (!decoded.ok()) break;
    frames.push_back(decoded.value());
    bytes = bytes.subspan(wire::kResponseSize);
  }
  return frames;
}

std::string lookup_frame(const std::string& ip) {
  wire::Request request;
  request.verb = wire::Verb::kLookup;
  request.addr = *net::Ipv4Addr::parse(ip);
  std::string out;
  wire::append_request(out, request);
  return out;
}

TEST(MtbinServer, NegotiatesAndMatchesTheIndexExactly) {
  RunningServer rs(test_config(snapshot_file("mtbin_basic", 0)));
  Client client(rs.port());
  ASSERT_TRUE(client.connected());

  const std::vector<std::string> probes = {"10.0.0.7", "192.168.5.9", "203.0.113.1",
                                           "8.8.8.8"};
  std::string request{wire::kPreamble};
  for (const auto& ip : probes) request += lookup_frame(ip);
  ASSERT_TRUE(client.send_all(request));

  const auto frames = read_frames(client, probes.size());
  ASSERT_EQ(frames.size(), probes.size());
  const serve::TelescopeIndex index(make_snapshot(0));
  for (std::size_t i = 0; i < probes.size(); ++i) {
    const auto addr = *net::Ipv4Addr::parse(probes[i]);
    EXPECT_EQ(frames[i], wire::make_verdict_response(addr, index.lookup(addr)))
        << probes[i];
  }
  // Dark hit, gray hit, prefixless hit, miss — the probe set is not vacuous.
  EXPECT_EQ(frames[0].cls, 0u);
  EXPECT_TRUE(frames[0].has_prefix);
  EXPECT_EQ(frames[0].origin_asn, 65001u);
  EXPECT_EQ(frames[2].cls, 0u);
  EXPECT_FALSE(frames[2].has_prefix);
  EXPECT_EQ(frames[3].cls, wire::kClassNone);

  const auto stats = rs.server->stats();
  EXPECT_EQ(stats.queries, probes.size());
  EXPECT_EQ(stats.invalid, 0u);
}

TEST(MtbinServer, SplitPreambleAndSplitFramesStillNegotiate) {
  RunningServer rs(test_config(snapshot_file("mtbin_split", 0)));
  Client client(rs.port());
  ASSERT_TRUE(client.connected());

  // The preamble split mid-token, then a frame split mid-field: the
  // negotiator must wait for more bytes instead of misreading the prefix
  // as a line, and the frame decoder must wait for the full 12 bytes.
  const std::string frame = lookup_frame("10.0.0.7");
  ASSERT_TRUE(client.send_all(std::string_view{wire::kPreamble}.substr(0, 3)));
  std::this_thread::sleep_for(20ms);
  ASSERT_TRUE(client.send_all(std::string{wire::kPreamble.substr(3)} + frame.substr(0, 5)));
  std::this_thread::sleep_for(20ms);
  ASSERT_TRUE(client.send_all(frame.substr(5) + lookup_frame("8.8.8.8")));

  const auto frames = read_frames(client, 2);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].addr, *net::Ipv4Addr::parse("10.0.0.7"));
  EXPECT_EQ(frames[0].cls, 0u);
  EXPECT_EQ(frames[1].addr, *net::Ipv4Addr::parse("8.8.8.8"));
  EXPECT_EQ(frames[1].cls, wire::kClassNone);
}

TEST(MtbinServer, PreambleDivergenceStaysOnTheLineProtocol) {
  RunningServer rs(test_config(snapshot_file("mtbin_diverge", 0)));

  // Shares 5 bytes with the preamble, then diverges: a line client whose
  // first token happens to start with "MTBIN" keeps the line protocol.
  Client almost(rs.port());
  ASSERT_TRUE(almost.connected());
  ASSERT_TRUE(almost.send_all("MTBINGO\n10.0.0.7\n"));
  const auto lines = almost.read_lines(2);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "MTBINGO invalid");
  EXPECT_EQ(lines[1], expected_line("10.0.0.7", 0));

  // An ordinary first line is line protocol from byte one.
  Client plain(rs.port());
  ASSERT_TRUE(plain.connected());
  ASSERT_TRUE(plain.send_all("10.0.0.7\n"));
  EXPECT_EQ(plain.read_lines(1), std::vector<std::string>{expected_line("10.0.0.7", 0)});
}

TEST(MtbinServer, CountInCanonicalizesAndCounts) {
  RunningServer rs(test_config(snapshot_file("mtbin_count", 0)));
  Client client(rs.port());
  ASSERT_TRUE(client.connected());

  const auto count_frame = [](const std::string& ip, std::uint8_t plen) {
    wire::Request request;
    request.verb = wire::Verb::kCountIn;
    request.plen = plen;
    request.addr = *net::Ipv4Addr::parse(ip);
    std::string out;
    wire::append_request(out, request);
    return out;
  };

  // Variant 0 classifies 10.0.0/24 + 10.0.1/24 (in 10/8), 192.168.5/24,
  // and 203.0.113/24 — four blocks total.  A non-canonical base must be
  // masked to the prefix and echoed canonical.
  std::string request{wire::kPreamble};
  request += count_frame("10.0.1.7", 8);       // canonical base 10.0.0.0
  request += count_frame("192.168.0.0", 16);
  request += count_frame("0.0.0.0", 0);        // the whole v4 space
  request += count_frame("10.0.0.0", 24);
  ASSERT_TRUE(client.send_all(request));

  const auto frames = read_frames(client, 4);
  ASSERT_EQ(frames.size(), 4u);
  for (const auto& frame : frames) EXPECT_EQ(frame.status, wire::Status::kCount);
  EXPECT_EQ(frames[0].count, 2u);
  EXPECT_EQ(frames[0].addr, *net::Ipv4Addr::parse("10.0.0.0")) << "echo not canonical";
  EXPECT_EQ(frames[0].plen, 8u);
  EXPECT_EQ(frames[1].count, 1u);
  EXPECT_EQ(frames[2].count, 4u);
  EXPECT_EQ(frames[3].count, 1u);
}

TEST(MtbinServer, MalformedFramesGetTypedRepliesAndKeepTheConnection) {
  RunningServer rs(test_config(snapshot_file("mtbin_invalid", 0)));
  Client client(rs.port());
  ASSERT_TRUE(client.connected());

  const auto resealed = [](std::size_t at, std::uint8_t value) {
    std::string out = lookup_frame("10.0.0.7");
    out[at] = static_cast<char>(value);
    std::array<std::uint8_t, wire::kRequestSize> bytes{};
    std::memcpy(bytes.data(), out.data(), out.size());
    util::le_patch_u32(bytes, 8, util::crc32(std::span(bytes).first(8)));
    return std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  };

  std::string request{wire::kPreamble};
  request += resealed(0, 9);      // bad verb
  request += resealed(2, 1);      // bad reserved
  request += resealed(1, 25);     // bad plen (lookup with plen != 0)
  std::string crc = lookup_frame("10.0.0.7");
  crc[4] = static_cast<char>(crc[4] ^ 0x40);  // corrupt without resealing
  request += crc;
  request += lookup_frame("10.0.0.7");  // and the stream carries on
  ASSERT_TRUE(client.send_all(request));

  const auto frames = read_frames(client, 5);
  ASSERT_EQ(frames.size(), 5u);
  EXPECT_EQ(frames[0].status, wire::Status::kInvalid);
  EXPECT_EQ(frames[0].cls, static_cast<std::uint8_t>(wire::InvalidReason::kBadVerb));
  EXPECT_EQ(frames[1].status, wire::Status::kInvalid);
  EXPECT_EQ(frames[1].cls, static_cast<std::uint8_t>(wire::InvalidReason::kBadReserved));
  EXPECT_EQ(frames[2].status, wire::Status::kInvalid);
  EXPECT_EQ(frames[2].cls, static_cast<std::uint8_t>(wire::InvalidReason::kBadPlen));
  EXPECT_EQ(frames[3].status, wire::Status::kInvalid);
  EXPECT_EQ(frames[3].cls, static_cast<std::uint8_t>(wire::InvalidReason::kBadCrc));
  EXPECT_EQ(frames[4].status, wire::Status::kVerdict);
  EXPECT_EQ(frames[4].cls, 0u);

  // Counting contract: every frame produced a reply (queries), the four
  // malformed ones were invalid, and none killed the connection (drops).
  const auto stats = rs.server->stats();
  EXPECT_EQ(stats.queries, 5u);
  EXPECT_EQ(stats.invalid, 4u);
  EXPECT_EQ(stats.drops, 0u);
}

TEST(MtbinServer, LiveCorruptionSweepNeverDesyncs) {
  RunningServer rs(test_config(snapshot_file("mtbin_corrupt", 0)));
  Client client(rs.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_all(std::string{wire::kPreamble}));

  // 256 rounds of (one corrupted frame, one clean frame) down a single
  // connection — test_snapshot's seeded flip idiom, live.  CRC32 catches
  // every single-byte flip, so each round must yield exactly one bad_crc
  // invalid reply followed by the clean frame's verdict: the stream never
  // desyncs, the connection never dies.
  util::Rng rng(0xc0ffee);
  constexpr int kRounds = 256;
  for (int i = 0; i < kRounds; ++i) {
    const std::string ip = "10.0." + std::to_string(i % 2) + "." + std::to_string(i % 256);
    std::string corrupted = lookup_frame(ip);
    const auto at = static_cast<std::size_t>(rng.uniform(corrupted.size()));
    const auto flip = static_cast<std::uint8_t>(1 + rng.uniform(255));
    corrupted[at] = static_cast<char>(static_cast<std::uint8_t>(corrupted[at]) ^ flip);
    ASSERT_TRUE(client.send_all(corrupted + lookup_frame(ip)));

    const auto frames = read_frames(client, 2);
    ASSERT_EQ(frames.size(), 2u) << "round " << i << " desynced";
    EXPECT_EQ(frames[0].status, wire::Status::kInvalid) << "round " << i;
    EXPECT_EQ(frames[0].cls, static_cast<std::uint8_t>(wire::InvalidReason::kBadCrc));
    EXPECT_EQ(frames[1].status, wire::Status::kVerdict) << "round " << i;
    EXPECT_EQ(frames[1].addr, *net::Ipv4Addr::parse(ip)) << "round " << i;
  }

  const auto stats = rs.server->stats();
  EXPECT_EQ(stats.queries, 2u * kRounds);
  EXPECT_EQ(stats.invalid, static_cast<std::uint64_t>(kRounds));
  EXPECT_EQ(stats.drops, 0u);
  EXPECT_EQ(stats.connections, 1u);
}

// ---------------------------------------------------------------------------
// The differential: both protocols must answer every probe with the same
// (class, prefix, origin-AS) triple, pinned over live loopback against a
// paper-scale snapshot (thousands of classified /24s under real prefixes).

TelescopeSnapshot paper_snapshot() {
  TelescopeSnapshot snap;
  snap.meta.seed = 7;
  snap.meta.created_unix_s = 1'700'000'000;
  snap.meta.source = "differential paper-scale";
  snap.prefixes.push_back(PrefixEntry{0x0a000000u, 65001, 8});   // 10.0.0.0/8
  snap.prefixes.push_back(PrefixEntry{0xac100000u, 64900, 12});  // 172.16.0.0/12
  snap.prefixes.push_back(PrefixEntry{0xc0a80000u, 65002, 16});  // 192.168.0.0/16
  std::uint64_t per_class[3] = {0, 0, 0};
  const auto add = [&](std::uint8_t a, std::uint8_t b, std::uint8_t c, int cls_index,
                       std::uint32_t prefix_index) {
    snap.blocks.push_back(BlockEntry::make(
        net::Block24::containing(net::Ipv4Addr::from_octets(a, b, c, 0)),
        static_cast<BlockClass>(cls_index), prefix_index));
    ++per_class[cls_index];
  };
  // Ascending block order, classes cycling: 1024 blocks under 10/8, 64
  // under 172.16/12, 128 under 192.168/16, one prefixless straggler.
  for (int b = 0; b < 4; ++b) {
    for (int c = 0; c < 256; ++c) add(10, std::uint8_t(b), std::uint8_t(c), (b + c) % 3, 0);
  }
  for (int c = 0; c < 64; ++c) add(172, 16, std::uint8_t(c), c % 3, 1);
  for (int c = 0; c < 256; c += 2) add(192, 168, std::uint8_t(c), c % 3, 2);
  add(203, 0, 113, 0, BlockEntry::kNoPrefix);
  snap.dark_count = per_class[0];
  snap.unclean_count = per_class[1];
  snap.gray_count = per_class[2];
  return snap;
}

/// Rebuild the line-protocol reply from a decoded binary verdict — the
/// cross-protocol bridge the differential compares through.
std::string line_from_binary(const wire::Response& response) {
  std::string line = response.addr.to_string();
  if (response.cls == wire::kClassNone) return line + " none";
  line += ' ';
  line += serve::to_string(static_cast<BlockClass>(response.cls));
  line += ' ';
  line += response.has_prefix
              ? net::Prefix(net::Ipv4Addr(response.prefix_base), response.plen).to_string()
              : "-";
  line += ' ';
  line += response.has_origin ? "AS" + std::to_string(response.origin_asn) : "-";
  return line;
}

TEST(MtbinServer, DifferentialLineVsBinaryOnPaperScaleSnapshot) {
  const std::string path = ::testing::TempDir() + "serve_differential.snap";
  {
    const auto written = serve::write_snapshot_file(paper_snapshot(), path);
    ASSERT_TRUE(written.ok()) << written.error().to_string();
  }
  RunningServer rs(test_config(path));

  // Probes spanning every population: hits in each prefix family, the
  // prefixless block, edge /24s, and misses just outside each range.
  std::vector<std::string> probes;
  for (int i = 0; i < 500; ++i) {
    probes.push_back("10." + std::to_string(i % 5) + "." + std::to_string((i * 7) % 256) +
                     "." + std::to_string(i % 256));
  }
  for (int i = 0; i < 200; ++i) {
    probes.push_back("172.16." + std::to_string((i * 3) % 96) + "." + std::to_string(i % 256));
  }
  for (int i = 0; i < 200; ++i) {
    probes.push_back("192.168." + std::to_string((i * 5) % 256) + "." + std::to_string(i));
  }
  for (int i = 0; i < 100; ++i) {
    probes.push_back(std::to_string(20 + i) + ".1.2.3");  // misses
  }
  probes.insert(probes.end(), {"10.3.255.255", "10.4.0.0", "172.16.63.255", "172.16.64.0",
                               "203.0.113.9", "203.0.114.0", "0.0.0.0", "255.255.255.255"});

  // One line client, one binary client, same probe order.
  Client line_client(rs.port());
  Client bin_client(rs.port());
  ASSERT_TRUE(line_client.connected());
  ASSERT_TRUE(bin_client.connected());
  std::string line_request;
  std::string bin_request{wire::kPreamble};
  for (const auto& ip : probes) {
    line_request += ip + "\n";
    bin_request += lookup_frame(ip);
  }
  ASSERT_TRUE(line_client.send_all(line_request));
  ASSERT_TRUE(bin_client.send_all(bin_request));

  const auto lines = line_client.read_lines(probes.size());
  const auto frames = read_frames(bin_client, probes.size());
  ASSERT_EQ(lines.size(), probes.size());
  ASSERT_EQ(frames.size(), probes.size());
  std::size_t hits = 0;
  for (std::size_t i = 0; i < probes.size(); ++i) {
    EXPECT_EQ(frames[i].addr, *net::Ipv4Addr::parse(probes[i])) << probes[i];
    EXPECT_EQ(lines[i], line_from_binary(frames[i])) << probes[i];
    if (frames[i].cls != wire::kClassNone) ++hits;
  }
  // The sweep exercised real classifications, not a wall of "none".
  EXPECT_GT(hits, probes.size() / 2);
  EXPECT_EQ(rs.server->stats().queries, 2 * probes.size());
  EXPECT_EQ(rs.server->stats().invalid, 0u);
}

}  // namespace
}  // namespace mtscope
