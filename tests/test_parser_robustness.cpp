// Robustness property tests: every wire decoder must survive arbitrary
// bytes — random garbage, truncations, and bit-flipped valid messages —
// without crashing, hanging or reading out of bounds.  Each decode either
// succeeds or returns a structured error.
#include <gtest/gtest.h>

#include <sstream>

#include "flow/ipfix.hpp"
#include "flow/netflow5.hpp"
#include "net/headers.hpp"
#include "net/pcap.hpp"
#include "util/rng.hpp"

namespace mtscope {
namespace {

std::vector<std::uint8_t> random_bytes(util::Rng& rng, std::size_t max_len) {
  std::vector<std::uint8_t> out(rng.uniform(max_len + 1));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next());
  return out;
}

class ParserFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzz, PacketParserNeverCrashes) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 3000; ++i) {
    const auto bytes = random_bytes(rng, 128);
    const auto result = net::parse_packet(bytes);
    if (result.ok()) {
      // Whatever parsed must at least be internally consistent.
      EXPECT_GE(result.value().ip.total_length, net::Ipv4Header::kMinSize);
    }
  }
}

TEST_P(ParserFuzz, IpfixDecoderNeverCrashes) {
  util::Rng rng(GetParam() ^ 0x1111);
  flow::IpfixDecoder decoder;
  for (int i = 0; i < 3000; ++i) {
    const auto bytes = random_bytes(rng, 256);
    (void)decoder.feed(bytes);  // ok() or error(), never UB
  }
  (void)decoder.drain();
}

TEST_P(ParserFuzz, NetflowDecoderNeverCrashes) {
  util::Rng rng(GetParam() ^ 0x2222);
  flow::NetflowV5Decoder decoder;
  for (int i = 0; i < 3000; ++i) {
    const auto bytes = random_bytes(rng, 256);
    (void)decoder.feed(bytes);
  }
  (void)decoder.drain();
}

TEST_P(ParserFuzz, PcapReaderNeverCrashes) {
  util::Rng rng(GetParam() ^ 0x3333);
  for (int i = 0; i < 300; ++i) {
    const auto bytes = random_bytes(rng, 512);
    std::stringstream stream(std::string(bytes.begin(), bytes.end()));
    (void)net::read_pcap(stream);
  }
}

TEST_P(ParserFuzz, TruncatedValidIpfixAlwaysErrorsCleanly) {
  util::Rng rng(GetParam() ^ 0x4444);
  // Build a valid message, then feed every prefix of it.
  std::vector<flow::FlowRecord> records(5);
  for (std::size_t i = 0; i < records.size(); ++i) {
    records[i].key.src = net::Ipv4Addr(static_cast<std::uint32_t>(rng.next()));
    records[i].key.dst = net::Ipv4Addr(static_cast<std::uint32_t>(rng.next()));
    records[i].packets = 1;
    records[i].bytes = 40;
  }
  flow::IpfixEncoder encoder;
  const auto message = encoder.encode(records, 0).at(0);
  for (std::size_t cut = 0; cut < message.size(); ++cut) {
    flow::IpfixDecoder decoder;
    const auto prefix = std::span<const std::uint8_t>(message.data(), cut);
    const auto fed = decoder.feed(prefix);
    EXPECT_FALSE(fed.ok()) << "prefix of " << cut << " bytes decoded successfully";
  }
}

TEST_P(ParserFuzz, BitFlippedIpfixNeverCrashes) {
  util::Rng rng(GetParam() ^ 0x5555);
  std::vector<flow::FlowRecord> records(10);
  for (std::size_t i = 0; i < records.size(); ++i) {
    records[i].key.dst = net::Ipv4Addr(static_cast<std::uint32_t>(i));
    records[i].packets = 1;
    records[i].bytes = 40;
  }
  flow::IpfixEncoder encoder;
  const auto original = encoder.encode(records, 0).at(0);
  for (int i = 0; i < 2000; ++i) {
    auto mutated = original;
    const std::size_t pos = rng.uniform(mutated.size());
    mutated[pos] ^= static_cast<std::uint8_t>(1u << rng.uniform(8));
    flow::IpfixDecoder decoder;
    (void)decoder.feed(mutated);
    (void)decoder.drain();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace mtscope
