// ShardRouter property suite: the routed segments must be a *stable
// partition* of the batch — every row in exactly one shard segment, the
// shard chosen by the same Block24 % shards key the stores are laid out
// by, ascending row order within a segment.  The partition property is
// what makes the per-shard merge disjoint (no block can land in two
// shards), so these tests are the foundation the contention-free merge's
// correctness argument stands on.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "flow/flow_batch.hpp"
#include "net/ipv4.hpp"
#include "pipeline/shard_router.hpp"
#include "util/rng.hpp"

namespace mtscope {
namespace {

flow::FlowBatch make_batch(std::size_t rows, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<flow::FlowRecord> records;
  records.reserve(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    flow::FlowRecord r;
    r.key.src = net::Ipv4Addr(static_cast<std::uint32_t>(rng.uniform(std::uint64_t{1} << 32)));
    r.key.dst = net::Ipv4Addr(static_cast<std::uint32_t>(rng.uniform(std::uint64_t{1} << 32)));
    r.key.proto = rng.chance(0.5) ? net::IpProto::kTcp : net::IpProto::kUdp;
    r.packets = 1 + rng.uniform(10);
    r.bytes = 40 * r.packets;
    records.push_back(r);
  }
  flow::FlowBatch batch;
  batch.decode(records, 100);
  return batch;
}

/// The partition laws for one side (rx or tx): correct shard for every
/// routed row, each batch row routed exactly once, ascending (stable)
/// order within each segment.
void expect_stable_partition(const flow::FlowBatch& batch,
                             std::span<const std::uint32_t> blocks,
                             const pipeline::ShardRouter& router, unsigned shards,
                             bool rx_side) {
  std::vector<unsigned> seen(batch.size(), 0);
  for (unsigned s = 0; s < shards; ++s) {
    const auto rows = rx_side ? router.rx_rows(s) : router.tx_rows(s);
    std::uint32_t prev = 0;
    bool first = true;
    for (const std::uint32_t i : rows) {
      ASSERT_LT(i, batch.size());
      EXPECT_EQ(blocks[i] % shards, s) << "row " << i << " dealt to wrong shard";
      if (!first) EXPECT_LT(prev, i) << "segment " << s << " not ascending";
      prev = i;
      first = false;
      seen[i] += 1;
    }
  }
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], 1u) << "row " << i << " routed " << seen[i] << " times";
  }
}

class ShardRouterPartition : public ::testing::TestWithParam<unsigned> {};

TEST_P(ShardRouterPartition, RxAndTxAreStablePartitions) {
  const unsigned shards = GetParam();
  const flow::FlowBatch batch = make_batch(997, 41);
  pipeline::ShardRouter router;
  router.route(batch, shards);
  EXPECT_EQ(router.shards(), shards);
  expect_stable_partition(batch, batch.dst_block(), router, shards, /*rx_side=*/true);
  expect_stable_partition(batch, batch.src_block(), router, shards, /*rx_side=*/false);
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ShardRouterPartition,
                         ::testing::Values(1u, 2u, 3u, 4u, 16u, 64u));

TEST(ShardRouter, SingleShardIsIdentity) {
  const flow::FlowBatch batch = make_batch(256, 43);
  pipeline::ShardRouter router;
  router.route(batch, 1);
  const auto rows = router.rx_rows(0);
  ASSERT_EQ(rows.size(), batch.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i], static_cast<std::uint32_t>(i));
  }
}

TEST(ShardRouter, EmptyBatch) {
  flow::FlowBatch batch;
  batch.decode({}, 100);
  pipeline::ShardRouter router;
  router.route(batch, 8);
  for (unsigned s = 0; s < 8; ++s) {
    EXPECT_TRUE(router.rx_rows(s).empty());
    EXPECT_TRUE(router.tx_rows(s).empty());
  }
}

TEST(ShardRouter, ReuseAcrossBatchesAndShardCounts) {
  // The worker loop reuses one router for every chunk; routing a smaller
  // batch (or different shard count) after a larger one must not leak
  // stale segments.
  pipeline::ShardRouter router;
  const flow::FlowBatch big = make_batch(2048, 47);
  router.route(big, 16);
  const flow::FlowBatch small = make_batch(100, 53);
  router.route(small, 4);
  expect_stable_partition(small, small.dst_block(), router, 4, /*rx_side=*/true);
  expect_stable_partition(small, small.src_block(), router, 4, /*rx_side=*/false);
  std::size_t total = 0;
  for (unsigned s = 0; s < 4; ++s) total += router.rx_rows(s).size();
  EXPECT_EQ(total, small.size());
}

TEST(ShardRouter, SkewedKeysStillPartition) {
  // All destinations in one /24: every rx row must land in the single
  // shard that block maps to, the rest must be empty.
  std::vector<flow::FlowRecord> records;
  for (std::uint32_t i = 0; i < 64; ++i) {
    flow::FlowRecord r;
    r.key.src = net::Ipv4Addr(0x0a000000u + i);
    r.key.dst = net::Ipv4Addr(0xc0a80100u + i);  // 192.168.1.0/24
    r.key.proto = net::IpProto::kTcp;
    r.packets = 1;
    r.bytes = 40;
    records.push_back(r);
  }
  flow::FlowBatch batch;
  batch.decode(records, 10);
  pipeline::ShardRouter router;
  router.route(batch, 16);
  const unsigned home = batch.dst_block()[0] % 16;
  for (unsigned s = 0; s < 16; ++s) {
    EXPECT_EQ(router.rx_rows(s).size(), s == home ? batch.size() : 0u);
  }
}

}  // namespace
}  // namespace mtscope
