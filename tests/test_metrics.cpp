// The observability layer: registry semantics, deterministic merges and
// JSON snapshots, and the contract the pipeline instrumentation must hold —
// recorded funnel counters exactly equal the returned FunnelCounts on the
// serial and every parallel path, and collect totals are invariant under
// worker/shard partitioning.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cctype>
#include <string>
#include <thread>
#include <vector>

#include "pipeline/collector.hpp"
#include "pipeline/inference.hpp"
#include "pipeline/parallel.hpp"
#include "serve/server.hpp"
#include "serve/snapshot.hpp"
#include "serve/wire.hpp"
#include "sim/simulation.hpp"

namespace mtscope {
namespace {

using obs::MetricsRegistry;
using obs::StageTimer;
using obs::TimingHistogram;

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON well-formedness checker (objects, arrays,
// strings, integers) — enough to prove a snapshot parses without pulling in
// a JSON dependency.

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  [[nodiscard]] bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string();
    return number();
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') return ++pos_, true;
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') return ++pos_, true;
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') return ++pos_, true;
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') return ++pos_, true;
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    return pos_ > start && std::isdigit(static_cast<unsigned char>(text_[pos_ - 1]));
  }

  [[nodiscard]] char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Registry primitives.

TEST(MetricsRegistry, RegistrationIsIdempotent) {
  MetricsRegistry r;
  obs::Counter& c1 = r.counter("collect.flows");
  c1.add(3);
  obs::Counter& c2 = r.counter("collect.flows");
  EXPECT_EQ(&c1, &c2);
  EXPECT_EQ(c2.value(), 3u);

  obs::Gauge& g = r.gauge("depth");
  g.set(4);
  EXPECT_EQ(&g, &r.gauge("depth"));
  EXPECT_EQ(r.gauge("depth").value(), 4);

  TimingHistogram& t = r.timer("stage_us");
  t.record_us(10);
  EXPECT_EQ(&t, &r.timer("stage_us"));
  EXPECT_EQ(r.timer("stage_us").count(), 1u);

  EXPECT_EQ(r.size(), 3u);
  EXPECT_FALSE(r.empty());
}

TEST(MetricsRegistry, LookupOfMissingMetrics) {
  MetricsRegistry r;
  EXPECT_EQ(r.find_counter("nope"), nullptr);
  EXPECT_EQ(r.find_gauge("nope"), nullptr);
  EXPECT_EQ(r.find_timer("nope"), nullptr);
  EXPECT_EQ(r.counter_value("nope"), 0u);
  EXPECT_TRUE(r.empty());

  r.counter("yes").add(7);
  ASSERT_NE(r.find_counter("yes"), nullptr);
  EXPECT_EQ(r.counter_value("yes"), 7u);
}

TEST(TimingHistogramTest, RecordsAndMerges) {
  TimingHistogram a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.min_us(), 0u);
  EXPECT_EQ(a.mean_us(), 0u);
  EXPECT_EQ(a.quantile_us(0.5), 0u);

  a.record_us(100);
  a.record_us(300);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.total_us(), 400u);
  EXPECT_EQ(a.min_us(), 100u);
  EXPECT_EQ(a.max_us(), 300u);
  EXPECT_EQ(a.mean_us(), 200u);
  // log2 buckets: 100us -> bucket 6 (lower bound 64), 300us -> bucket 8.
  EXPECT_EQ(a.quantile_us(0.5), 64u);
  EXPECT_EQ(a.quantile_us(0.99), 256u);

  TimingHistogram b;
  b.record_us(10);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.total_us(), 410u);
  EXPECT_EQ(a.min_us(), 10u);
  EXPECT_EQ(a.max_us(), 300u);

  TimingHistogram empty;
  a.merge(empty);  // merging an empty histogram is a no-op
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min_us(), 10u);
}

TEST(StageTimerTest, NullRegistryIsANoOp) {
  StageTimer timer(nullptr, "never");
  timer.stop();  // must not crash; nothing to record into
}

TEST(StageTimerTest, RecordsOneSamplePerScope) {
  MetricsRegistry r;
  {
    StageTimer timer(&r, "scoped_us");
  }
  {
    StageTimer timer(&r, "scoped_us");
    timer.stop();
    timer.stop();  // idempotent
  }
  ASSERT_NE(r.find_timer("scoped_us"), nullptr);
  EXPECT_EQ(r.find_timer("scoped_us")->count(), 2u);
}

// ---------------------------------------------------------------------------
// Merge determinism.

TEST(MetricsRegistry, MergeSemanticsPerKind) {
  MetricsRegistry a;
  a.counter("c").add(2);
  a.gauge("g").set(5);
  a.timer("t_us").record_us(100);

  MetricsRegistry b;
  b.counter("c").add(3);
  b.counter("only_b").add(1);
  b.gauge("g").set(3);
  b.timer("t_us").record_us(200);

  a.merge(b);
  EXPECT_EQ(a.counter_value("c"), 5u);        // counters add
  EXPECT_EQ(a.counter_value("only_b"), 1u);   // missing names materialise
  EXPECT_EQ(a.find_gauge("g")->value(), 5);   // gauges keep the max
  EXPECT_EQ(a.find_timer("t_us")->count(), 2u);  // timers pool samples
  EXPECT_EQ(a.find_timer("t_us")->total_us(), 300u);
}

TEST(MetricsRegistry, MergeTotalsIndependentOfPartition) {
  // The same 60 events split 2 ways vs 3 ways must snapshot identically.
  const auto record = [](MetricsRegistry& r, int events) {
    for (int i = 0; i < events; ++i) r.counter("events").add();
    r.gauge("width").set(7);  // same level in every partition
  };

  MetricsRegistry two_a, two_b;
  record(two_a, 45);
  record(two_b, 15);
  MetricsRegistry two;
  two.merge(two_a);
  two.merge(two_b);

  MetricsRegistry three;
  for (const int part : {20, 20, 20}) {
    MetricsRegistry local;
    record(local, part);
    three.merge(local);
  }

  EXPECT_EQ(two.counter_value("events"), 60u);
  EXPECT_EQ(two.to_json(), three.to_json());
}

// ---------------------------------------------------------------------------
// JSON snapshots.

TEST(MetricsJson, GoldenSnapshot) {
  MetricsRegistry r;
  r.counter("alpha").add(3);
  r.counter("beta").add(1);
  r.gauge("depth").set(4);
  r.timer("stage_us").record_us(100);
  r.timer("stage_us").record_us(300);

  const std::string expected =
      "{\n"
      "  \"counters\": {\n"
      "    \"alpha\": 3,\n"
      "    \"beta\": 1\n"
      "  },\n"
      "  \"gauges\": {\n"
      "    \"depth\": 4\n"
      "  },\n"
      "  \"timers\": {\n"
      "    \"stage_us\": {\"count\": 2, \"total\": 400, \"min\": 100, \"max\": 300, "
      "\"mean\": 200, \"p50\": 64, \"p99\": 256}\n"
      "  }\n"
      "}";
  EXPECT_EQ(r.to_json(), expected);
  EXPECT_TRUE(JsonChecker(expected).valid());
}

TEST(MetricsJson, EmptyRegistryKeepsSchema) {
  const std::string json = MetricsRegistry{}.to_json();
  EXPECT_TRUE(JsonChecker(json).valid());
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"timers\""), std::string::npos);
}

TEST(MetricsJson, EscapesAwkwardNames) {
  MetricsRegistry r;
  r.counter("weird\"name\\with\ncontrol").add(1);
  const std::string json = r.to_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\\\"name\\\\with\\u000a"), std::string::npos);
}

TEST(MetricsJson, IndentShiftsNestedLinesOnly) {
  MetricsRegistry r;
  r.counter("a").add(1);
  const std::string json = r.to_json(2);
  EXPECT_EQ(json.front(), '{');                       // first line unshifted
  EXPECT_NE(json.find("\n    \"counters\""), std::string::npos);
  EXPECT_EQ(json.substr(json.size() - 3), "  }");     // closing brace shifted
}

// ---------------------------------------------------------------------------
// Pipeline instrumentation contracts.

struct PipelineFixture {
  sim::Simulation simulation{sim::SimConfig::tiny(101)};
  std::vector<std::size_t> ixps = pipeline::all_ixps(simulation);
  std::vector<int> days{0, 1};
  pipeline::VantageStats stats = pipeline::collect_stats(simulation, ixps, days);
  routing::SpecialPurposeRegistry registry = routing::SpecialPurposeRegistry::standard();
  pipeline::PipelineConfig config = [this] {
    pipeline::PipelineConfig c;
    c.volume_scale = simulation.config().volume_scale;
    return c;
  }();
  pipeline::InferenceEngine engine{config, simulation.plan().rib(), registry};
};

const PipelineFixture& fixture() {
  static const PipelineFixture shared;
  return shared;
}

void expect_funnel_counters(const MetricsRegistry& m, const pipeline::FunnelCounts& f) {
  EXPECT_EQ(m.counter_value(pipeline::funnel_metric::kSeen), f.seen);
  EXPECT_EQ(m.counter_value(pipeline::funnel_metric::kAfterTcp), f.after_tcp);
  EXPECT_EQ(m.counter_value(pipeline::funnel_metric::kAfterSize), f.after_size);
  EXPECT_EQ(m.counter_value(pipeline::funnel_metric::kAfterSource), f.after_source);
  EXPECT_EQ(m.counter_value(pipeline::funnel_metric::kAfterReserved), f.after_reserved);
  EXPECT_EQ(m.counter_value(pipeline::funnel_metric::kAfterRouted), f.after_routed);
  EXPECT_EQ(m.counter_value(pipeline::funnel_metric::kAfterVolume), f.after_volume);
  EXPECT_EQ(m.counter_value("funnel.eliminated.tcp"), f.seen - f.after_tcp);
  EXPECT_EQ(m.counter_value("funnel.eliminated.volume"), f.after_routed - f.after_volume);
}

TEST(InferMetrics, SerialCountersEqualReturnedFunnel) {
  const PipelineFixture& fx = fixture();
  MetricsRegistry metrics;
  const auto result = fx.engine.infer(fx.stats, &metrics);

  // The instrumented run must not disturb the result itself.
  const auto plain = fx.engine.infer(fx.stats);
  EXPECT_EQ(result.funnel, plain.funnel);
  EXPECT_TRUE(result.dark == plain.dark);

  expect_funnel_counters(metrics, result.funnel);
  EXPECT_EQ(metrics.counter_value("infer.dark"), result.dark.size());
  EXPECT_EQ(metrics.counter_value("infer.unclean"), result.unclean);
  EXPECT_EQ(metrics.counter_value("infer.gray"), result.gray);
  ASSERT_NE(metrics.find_timer("infer.total_us"), nullptr);
  EXPECT_EQ(metrics.find_timer("infer.total_us")->count(), 1u);
  ASSERT_NE(metrics.find_timer("infer.step.scan_us"), nullptr);
}

TEST(InferMetrics, ParallelCountersEqualSerialAcrossGrid) {
  const PipelineFixture& fx = fixture();
  const auto serial = fx.engine.infer(fx.stats);
  for (const unsigned threads : {2u, 3u, 4u, 8u}) {
    MetricsRegistry metrics;
    const auto result = pipeline::parallel_infer(fx.engine, fx.stats, threads, &metrics);
    EXPECT_EQ(result.funnel, serial.funnel) << threads << " threads";
    expect_funnel_counters(metrics, serial.funnel);
    EXPECT_EQ(metrics.counter_value("infer.dark"), serial.dark.size());
    EXPECT_EQ(metrics.find_gauge("parallel.infer.workers")->value(), threads);
  }
}

TEST(CollectMetrics, TotalsInvariantAcrossPartitions) {
  const PipelineFixture& fx = fixture();
  MetricsRegistry serial;
  const auto serial_stats =
      pipeline::collect_stats(fx.simulation, fx.ixps, fx.days, &serial);
  EXPECT_EQ(serial.counter_value("collect.flows"), serial_stats.flows_ingested());
  EXPECT_EQ(serial.counter_value("collect.datasets"), fx.ixps.size() * fx.days.size());

  for (const auto& [threads, shards] : std::vector<std::pair<unsigned, unsigned>>{
           {2, 4}, {3, 5}, {4, 16}}) {
    MetricsRegistry metrics;
    pipeline::CollectOptions options{threads, shards, &metrics};
    const auto stats = pipeline::collect_stats(fx.simulation, fx.ixps, fx.days, options);
    EXPECT_EQ(stats.flows_ingested(), serial_stats.flows_ingested());
    // The shared ingest-health counters never depend on the partition.
    for (const std::string_view name :
         {"collect.flows", "collect.datasets", "collect.parse_drops"}) {
      EXPECT_EQ(metrics.counter_value(name), serial.counter_value(name))
          << name << " @ " << threads << "x" << shards;
    }
    for (const std::size_t ixp : fx.ixps) {
      const std::string name =
          "collect.vantage." + fx.simulation.ixps()[ixp].spec().code + ".flows";
      EXPECT_EQ(metrics.counter_value(name), serial.counter_value(name)) << name;
    }
    EXPECT_EQ(metrics.find_gauge("parallel.collect.workers")->value(), threads);
    EXPECT_EQ(metrics.find_gauge("parallel.collect.shards")->value(), shards);
    ASSERT_NE(metrics.find_gauge("parallel.collect.merge.depth"), nullptr);
    ASSERT_NE(metrics.find_timer("parallel.collect.merge_us"), nullptr);
    // Every shard-balance gauge exists and they sum to the block universe
    // touched by the workers (>= the merged map size; shards overlap keys).
    std::int64_t shard_total = 0;
    for (unsigned s = 0; s < shards; ++s) {
      const auto* gauge =
          metrics.find_gauge("parallel.collect.shard." + std::to_string(s) + ".blocks");
      ASSERT_NE(gauge, nullptr);
      shard_total += gauge->value();
    }
    EXPECT_GE(shard_total, static_cast<std::int64_t>(stats.blocks().size()));
  }
}

TEST(CollectMetrics, StoreGaugesDescribeTheFinalStore) {
  // Both collectors record the layout of the store they return —
  // collect.store.* gauges must match the returned object exactly, on the
  // serial path and on every parallel partition.
  const PipelineFixture& fx = fixture();
  for (const auto& [threads, shards] :
       std::vector<std::pair<unsigned, unsigned>>{{1, 1}, {2, 4}, {4, 16}}) {
    MetricsRegistry metrics;
    pipeline::CollectOptions options{threads, shards, &metrics};
    const auto stats = pipeline::collect_stats(fx.simulation, fx.ixps, fx.days, options);
    const pipeline::BlockStatsStore& store = stats.blocks();
    const std::string tag = std::to_string(threads) + "x" + std::to_string(shards);

    const auto* blocks = metrics.find_gauge("collect.store.blocks");
    ASSERT_NE(blocks, nullptr) << tag;
    EXPECT_EQ(blocks->value(), static_cast<std::int64_t>(store.size())) << tag;

    const auto* bytes = metrics.find_gauge("collect.store.bytes");
    ASSERT_NE(bytes, nullptr) << tag;
    EXPECT_EQ(bytes->value(), static_cast<std::int64_t>(store.memory_bytes())) << tag;

    const auto* load = metrics.find_gauge("collect.store.load_factor");
    ASSERT_NE(load, nullptr) << tag;
    EXPECT_EQ(load->value(), static_cast<std::int64_t>(store.load_factor() * 100.0)) << tag;
    EXPECT_GT(load->value(), 0) << tag;
    EXPECT_LE(load->value(), 87) << tag;  // 7/8 max load

    const auto* spills = metrics.find_gauge("collect.store.arena_spills");
    ASSERT_NE(spills, nullptr) << tag;
    EXPECT_EQ(spills->value(), static_cast<std::int64_t>(store.arena_spills())) << tag;
  }
}

TEST(CollectMetrics, SnapshotOfFullPipelineParsesAsJson) {
  const PipelineFixture& fx = fixture();
  MetricsRegistry metrics;
  pipeline::CollectOptions options{2, 4, &metrics};
  const auto stats = pipeline::collect_stats(fx.simulation, fx.ixps, fx.days, options);
  (void)pipeline::parallel_infer(fx.engine, stats, 2, &metrics);
  EXPECT_TRUE(JsonChecker(metrics.to_json()).valid());
}

// ---------------------------------------------------------------------------
// The serve counting contract (DESIGN.md §12) as exported through the
// registry: serve.server.queries counts every reply produced — valid
// verdicts, invalid-line echoes, invalid MTBIN frames, AND the one reply
// an overlong line gets before the kill (the pre-fix code skipped that
// bump); serve.server.invalid counts the malformed subset;
// serve.server.drops counts only connection-killing violations.

TEST(ServeMetrics, CountingContractAcrossBothProtocols) {
  serve::TelescopeSnapshot snap;
  snap.meta.seed = 3;
  snap.meta.created_unix_s = 1'700'000'000;
  snap.meta.source = "metrics contract";
  snap.prefixes.push_back(serve::PrefixEntry{0x0a000000u, 65001, 8});
  snap.blocks.push_back(serve::BlockEntry::make(
      net::Block24::containing(net::Ipv4Addr::from_octets(10, 0, 0, 0)),
      serve::BlockClass::kDark, 0));
  snap.dark_count = 1;
  const std::string path = ::testing::TempDir() + "metrics_contract.snap";
  ASSERT_TRUE(serve::write_snapshot_file(snap, path).ok());

  MetricsRegistry metrics;
  serve::ServerConfig config;
  config.snapshot_path = path;
  config.port = 0;
  config.max_request_bytes = 64;
  serve::QueryServer server(std::move(config), &metrics);
  ASSERT_TRUE(server.start().ok());
  std::thread runner([&server] { server.run(); });

  const auto talk = [&server](const std::string& payload, std::size_t reply_bytes) {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    ASSERT_GE(fd, 0);
    const timeval timeout{10, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(server.port());
    ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)), 0);
    ASSERT_EQ(::send(fd, payload.data(), payload.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(payload.size()));
    ::shutdown(fd, SHUT_WR);
    std::string got;
    char chunk[4096];
    for (ssize_t n; (n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0;) {
      got.append(chunk, static_cast<std::size_t>(n));
    }
    EXPECT_GE(got.size(), reply_bytes);
    ::close(fd);
  };

  // Line client: 2 verdicts + 1 invalid line = 3 queries, 1 invalid.
  talk("10.0.0.1\n8.8.8.8\nnot-an-ip\n", 3);
  // Overlong line client: 1 query, 1 invalid, 1 drop.
  talk(std::string(80, 'x') + "\n", 1);
  // Binary client: preamble + 2 valid lookups + 1 corrupted frame
  // = 3 queries, 1 invalid, 0 drops.
  {
    std::string payload{serve::wire::kPreamble};
    serve::wire::Request request;
    request.addr = net::Ipv4Addr::from_octets(10, 0, 0, 9);
    serve::wire::append_request(payload, request);
    std::string corrupt;
    serve::wire::append_request(corrupt, request);
    corrupt[6] = static_cast<char>(corrupt[6] ^ 0x10);
    payload += corrupt;
    serve::wire::append_request(payload, request);
    talk(payload, 3 * serve::wire::kResponseSize);
  }

  server.request_stop();
  runner.join();

  EXPECT_EQ(metrics.counter_value("serve.server.queries"), 7u);
  EXPECT_EQ(metrics.counter_value("serve.server.invalid"), 3u);
  EXPECT_EQ(metrics.counter_value("serve.server.drops"), 1u);
  EXPECT_EQ(metrics.counter_value("serve.server.connections"), 3u);
  const auto* timer = metrics.find_timer("serve.server.request_us");
  ASSERT_NE(timer, nullptr);
  // Every produced reply is timed — valid or invalid, line or frame —
  // except the overlong kill, which never reaches the request path.
  EXPECT_EQ(timer->count(), 6u);
}

}  // namespace
}  // namespace mtscope
