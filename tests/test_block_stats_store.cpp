// BlockStatsStore unit + property tests: the open-addressing index, the
// inline->arena per-IP growth path, linear sorted-run merges, deep-copy
// semantics, and — the load-bearing part — a randomized differential
// against a map-backed reference model over generated flow batches.  Under
// MTSCOPE_SANITIZE=address this binary doubles as the asan_store_smoke
// ctest (arena growth, spill, and merge all run here).
#include "pipeline/block_stats_store.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "util/rng.hpp"

namespace mtscope::pipeline {
namespace {

net::Block24 block(std::uint32_t index) { return net::Block24(index); }

TEST(BlockStatsStore, EmptyStore) {
  const BlockStatsStore store;
  EXPECT_EQ(store.size(), 0u);
  EXPECT_TRUE(store.empty());
  EXPECT_FALSE(store.find(block(1)));
  EXPECT_EQ(store.begin(), store.end());
  EXPECT_DOUBLE_EQ(store.load_factor(), 0.0);
  EXPECT_EQ(store.arena_spills(), 0u);
}

TEST(BlockStatsStore, AddRxAccumulatesColumns) {
  BlockStatsStore store;
  store.add_rx(block(7), 5, 2, 200, true, 80);
  store.add_rx(block(7), 5, 1, 100, true, 48);
  store.add_rx(block(7), 9, 3, 300, false, 0);

  EXPECT_EQ(store.size(), 1u);
  const BlockStatsStore::ConstRow row = store.find(block(7));
  ASSERT_TRUE(row);
  EXPECT_EQ(row.block().index(), 7u);
  EXPECT_EQ(row.rx_packets(), 6u);
  EXPECT_EQ(row.rx_tcp_packets(), 3u);
  EXPECT_EQ(row.rx_tcp_bytes(), 128u);
  EXPECT_EQ(row.rx_est_packets(), 600u);
  EXPECT_EQ(row.tx_packets(), 0u);
  ASSERT_EQ(row.ips().size(), 2u);
  EXPECT_EQ(row.ips()[0].host, 5);
  EXPECT_EQ(row.ips()[0].packets, 3u);
  EXPECT_EQ(row.ips()[0].tcp_packets, 3u);
  EXPECT_EQ(row.ips()[1].host, 9);
  EXPECT_EQ(row.ips()[1].tcp_packets, 0u);
  EXPECT_NEAR(row.avg_tcp_size(), 128.0 / 3.0, 1e-9);
}

TEST(BlockStatsStore, AddTxSetsBitmap) {
  BlockStatsStore store;
  store.add_tx(block(3), 0, 4);
  store.add_tx(block(3), 63, 1);
  store.add_tx(block(3), 64, 1);
  store.add_tx(block(3), 255, 1);

  const BlockStatsStore::ConstRow row = store.find(block(3));
  ASSERT_TRUE(row);
  EXPECT_EQ(row.tx_packets(), 7u);
  EXPECT_EQ(row.rx_packets(), 0u);
  EXPECT_TRUE(row.host_sent(0));
  EXPECT_TRUE(row.host_sent(63));
  EXPECT_TRUE(row.host_sent(64));
  EXPECT_TRUE(row.host_sent(255));
  EXPECT_FALSE(row.host_sent(128));
}

TEST(BlockStatsStore, IterationIsInsertionOrder) {
  BlockStatsStore store;
  const std::uint32_t keys[] = {900, 1, 44, 0xffffff, 17};
  for (const std::uint32_t k : keys) store.add_rx(block(k), 0, 1, 1, false, 0);

  std::vector<std::uint32_t> seen;
  for (const BlockStatsStore::ConstRow row : store) seen.push_back(row.block().index());
  ASSERT_EQ(seen.size(), 5u);
  for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], keys[i]);
  for (std::size_t i = 0; i < store.size(); ++i) {
    EXPECT_EQ(store.row(i).block().index(), keys[i]);
  }
}

TEST(BlockStatsStore, GrowthRehashKeepsEveryKeyFindable) {
  BlockStatsStore store;
  constexpr std::uint32_t kBlocks = 10'000;  // many doublings past the initial 16
  for (std::uint32_t k = 0; k < kBlocks; ++k) {
    store.add_rx(block(k * 37 % (1u << 24)), static_cast<std::uint8_t>(k), 1, 10, true, 40);
  }
  EXPECT_EQ(store.size(), kBlocks);
  EXPECT_LE(store.load_factor(), 7.0 / 8.0);
  EXPECT_GT(store.load_factor(), 0.0);
  for (std::uint32_t k = 0; k < kBlocks; ++k) {
    EXPECT_TRUE(store.find(block(k * 37 % (1u << 24)))) << k;
  }
  EXPECT_GT(store.memory_bytes(), 0u);
}

TEST(BlockStatsStore, InlineRunSpillsToArenaAndStaysSorted) {
  BlockStatsStore store;
  EXPECT_EQ(store.arena_spills(), 0u);

  // kInlineIps hosts stay inline…
  store.add_rx(block(1), 10, 1, 1, false, 0);
  store.add_rx(block(1), 5, 1, 1, false, 0);
  EXPECT_EQ(store.arena_spills(), 0u);
  // …the third spills to the arena.
  store.add_rx(block(1), 7, 1, 1, false, 0);
  EXPECT_EQ(store.arena_spills(), 1u);
  EXPECT_GE(store.arena_allocated_ips(), 3u);

  const BlockStatsStore::ConstRow row = store.find(block(1));
  ASSERT_EQ(row.ips().size(), 3u);
  EXPECT_EQ(row.ips()[0].host, 5);
  EXPECT_EQ(row.ips()[1].host, 7);
  EXPECT_EQ(row.ips()[2].host, 10);
}

TEST(BlockStatsStore, RunGrowsToAllHostsOfTheBlock) {
  // Worst case: every host of the /24 observed — regrows walk 8 -> 256 and
  // the abandoned capacities are accounted as waste.
  BlockStatsStore store;
  for (int host = 255; host >= 0; --host) {
    store.add_rx(block(2), static_cast<std::uint8_t>(host), 1, 1, true, 40);
  }
  const BlockStatsStore::ConstRow row = store.find(block(2));
  ASSERT_EQ(row.ips().size(), 256u);
  for (int host = 0; host < 256; ++host) {
    EXPECT_EQ(row.ips()[static_cast<std::size_t>(host)].host, host);
  }
  EXPECT_GT(store.arena_spills(), 1u);
  EXPECT_GT(store.arena_wasted_ips(), 0u);
  EXPECT_GT(store.arena_allocated_ips(), store.arena_wasted_ips());
}

TEST(BlockStatsStore, MergeDisjointAppends) {
  BlockStatsStore a;
  a.add_rx(block(1), 1, 1, 10, true, 40);
  BlockStatsStore b;
  b.add_rx(block(2), 2, 2, 20, false, 0);
  b.add_tx(block(3), 9, 5);
  a.merge(b);

  EXPECT_EQ(a.size(), 3u);
  EXPECT_TRUE(a.find(block(1)));
  EXPECT_TRUE(a.find(block(2)));
  EXPECT_EQ(a.find(block(3)).tx_packets(), 5u);
}

TEST(BlockStatsStore, MergeSharedRowsAddsCountersAndUnionsRuns) {
  BlockStatsStore a;
  a.add_rx(block(1), 1, 1, 10, true, 40);
  a.add_rx(block(1), 200, 2, 20, false, 0);
  a.add_tx(block(1), 4, 3);
  BlockStatsStore b;
  b.add_rx(block(1), 1, 5, 50, true, 200);
  b.add_rx(block(1), 7, 1, 10, false, 0);
  b.add_tx(block(1), 100, 2);
  a.merge(b);

  const BlockStatsStore::ConstRow row = a.find(block(1));
  ASSERT_TRUE(row);
  EXPECT_EQ(row.rx_packets(), 9u);
  EXPECT_EQ(row.rx_tcp_packets(), 6u);
  EXPECT_EQ(row.rx_tcp_bytes(), 240u);
  EXPECT_EQ(row.tx_packets(), 5u);
  EXPECT_TRUE(row.host_sent(4));
  EXPECT_TRUE(row.host_sent(100));
  ASSERT_EQ(row.ips().size(), 3u);  // {1, 7, 200}, host 1 combined
  EXPECT_EQ(row.ips()[0].host, 1);
  EXPECT_EQ(row.ips()[0].packets, 6u);
  EXPECT_EQ(row.ips()[0].tcp_bytes, 240u);
  EXPECT_EQ(row.ips()[1].host, 7);
  EXPECT_EQ(row.ips()[2].host, 200);
}

TEST(BlockStatsStore, MergeSpilledIntoSpilledRun) {
  BlockStatsStore a;
  BlockStatsStore b;
  for (int host = 0; host < 40; host += 2) {   // evens in a
    a.add_rx(block(9), static_cast<std::uint8_t>(host), 1, 1, false, 0);
  }
  for (int host = 1; host < 40; host += 2) {   // odds in b
    b.add_rx(block(9), static_cast<std::uint8_t>(host), 1, 1, false, 0);
  }
  a.merge(b);
  const BlockStatsStore::ConstRow row = a.find(block(9));
  ASSERT_EQ(row.ips().size(), 40u);
  for (int host = 0; host < 40; ++host) {
    EXPECT_EQ(row.ips()[static_cast<std::size_t>(host)].host, host);
  }
}

TEST(BlockStatsStore, CopyIsDeep) {
  BlockStatsStore original;
  for (int host = 0; host < 10; ++host) {  // spilled run in the arena
    original.add_rx(block(5), static_cast<std::uint8_t>(host), 1, 1, true, 40);
  }
  BlockStatsStore copy = original;
  // Mutating the copy (including regrowing its run) must not disturb the
  // original, and vice versa — the spill pointers live in separate arenas.
  for (int host = 10; host < 60; ++host) {
    copy.add_rx(block(5), static_cast<std::uint8_t>(host), 7, 7, false, 0);
  }
  original.add_rx(block(5), 0, 100, 100, false, 0);

  EXPECT_EQ(copy.find(block(5)).ips().size(), 60u);
  EXPECT_EQ(copy.find(block(5)).ips()[0].packets, 1u);
  EXPECT_EQ(original.find(block(5)).ips().size(), 10u);
  EXPECT_EQ(original.find(block(5)).ips()[0].packets, 101u);

  BlockStatsStore assigned;
  assigned.add_rx(block(1), 1, 1, 1, false, 0);
  assigned = original;
  EXPECT_FALSE(assigned.find(block(1)));
  EXPECT_EQ(assigned.find(block(5)).ips().size(), 10u);
}

TEST(BlockStatsStore, MoveLeavesSpillPointersValid) {
  BlockStatsStore source;
  for (int host = 0; host < 20; ++host) {
    source.add_rx(block(4), static_cast<std::uint8_t>(host), 1, 1, false, 0);
  }
  const BlockStatsStore moved = std::move(source);
  const BlockStatsStore::ConstRow row = moved.find(block(4));
  ASSERT_EQ(row.ips().size(), 20u);  // arena chunks moved, pointers intact
  EXPECT_EQ(row.ips()[19].host, 19);
}

// ---------------------------------------------------------------------------
// Differential + property tests against a map-backed reference model: the
// store must behave exactly like the obvious std::map implementation under
// random interleavings of add_rx / add_tx / merge.

struct RefBlock {
  std::uint64_t rx_packets = 0;
  std::uint64_t rx_tcp_packets = 0;
  std::uint64_t rx_tcp_bytes = 0;
  std::uint64_t rx_est_packets = 0;
  std::uint64_t tx_packets = 0;
  std::array<std::uint64_t, 4> tx_host_bits{};
  std::map<std::uint8_t, IpRxStats> ips;  // sorted by host, like the store
};

struct RefStore {
  std::map<std::uint32_t, RefBlock> blocks;

  void add_rx(net::Block24 b, std::uint8_t host, std::uint64_t packets,
              std::uint64_t est_packets, bool tcp, std::uint64_t tcp_bytes) {
    RefBlock& row = blocks[b.index()];
    row.rx_packets += packets;
    row.rx_est_packets += est_packets;
    IpRxStats& ip = row.ips.try_emplace(host, IpRxStats{host, 0, 0, 0}).first->second;
    ip.packets += static_cast<std::uint32_t>(packets);
    if (tcp) {
      row.rx_tcp_packets += packets;
      row.rx_tcp_bytes += tcp_bytes;
      ip.tcp_packets += static_cast<std::uint32_t>(packets);
      ip.tcp_bytes += tcp_bytes;
    }
  }

  void add_tx(net::Block24 b, std::uint8_t host, std::uint64_t packets) {
    RefBlock& row = blocks[b.index()];
    row.tx_packets += packets;
    row.tx_host_bits[host >> 6] |= std::uint64_t{1} << (host & 63);
  }

  void merge(const RefStore& other) {
    for (const auto& [key, theirs] : other.blocks) {
      RefBlock& row = blocks[key];
      row.rx_packets += theirs.rx_packets;
      row.rx_tcp_packets += theirs.rx_tcp_packets;
      row.rx_tcp_bytes += theirs.rx_tcp_bytes;
      row.rx_est_packets += theirs.rx_est_packets;
      row.tx_packets += theirs.tx_packets;
      for (int w = 0; w < 4; ++w) row.tx_host_bits[w] |= theirs.tx_host_bits[w];
      for (const auto& [host, ip] : theirs.ips) {
        IpRxStats& mine = row.ips.try_emplace(host, IpRxStats{host, 0, 0, 0}).first->second;
        mine.packets += ip.packets;
        mine.tcp_packets += ip.tcp_packets;
        mine.tcp_bytes += ip.tcp_bytes;
      }
    }
  }
};

void expect_matches_reference(const BlockStatsStore& store, const RefStore& ref) {
  ASSERT_EQ(store.size(), ref.blocks.size());
  for (const auto& [key, want] : ref.blocks) {
    const BlockStatsStore::ConstRow row = store.find(net::Block24(key));
    ASSERT_TRUE(row) << key;
    EXPECT_EQ(row.rx_packets(), want.rx_packets) << key;
    EXPECT_EQ(row.rx_tcp_packets(), want.rx_tcp_packets) << key;
    EXPECT_EQ(row.rx_tcp_bytes(), want.rx_tcp_bytes) << key;
    EXPECT_EQ(row.rx_est_packets(), want.rx_est_packets) << key;
    EXPECT_EQ(row.tx_packets(), want.tx_packets) << key;
    EXPECT_EQ(row.tx_host_bits(), want.tx_host_bits) << key;
    const auto ips = row.ips();
    ASSERT_EQ(ips.size(), want.ips.size()) << key;
    std::size_t i = 0;
    for (const auto& [host, ip] : want.ips) {
      EXPECT_EQ(ips[i].host, host) << key;
      EXPECT_EQ(ips[i].packets, ip.packets) << key;
      EXPECT_EQ(ips[i].tcp_packets, ip.tcp_packets) << key;
      EXPECT_EQ(ips[i].tcp_bytes, ip.tcp_bytes) << key;
      ++i;
    }
  }
}

struct Op {
  bool rx = true;
  std::uint32_t key = 0;
  std::uint8_t host = 0;
  std::uint64_t packets = 0;
  bool tcp = false;
  std::uint64_t bytes = 0;
};

// Few blocks + few hosts so rows collide hard: deep per-IP runs, both
// inline and spilled, and plenty of shared rows between merge operands.
std::vector<Op> random_ops(std::uint64_t seed, std::size_t count) {
  util::Rng rng(seed);
  std::vector<Op> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Op op;
    op.rx = rng.chance(0.8);
    op.key = static_cast<std::uint32_t>(rng.uniform(64));
    op.host = static_cast<std::uint8_t>(rng.uniform(16));
    op.packets = 1 + rng.uniform(4);
    op.tcp = rng.chance(0.6);
    op.bytes = op.packets * (rng.chance(0.8) ? 40 : 1400);
    out.push_back(op);
  }
  return out;
}

void apply(const Op& op, BlockStatsStore& store, RefStore& ref) {
  if (op.rx) {
    store.add_rx(block(op.key), op.host, op.packets, op.packets * 100, op.tcp, op.bytes);
    ref.add_rx(block(op.key), op.host, op.packets, op.packets * 100, op.tcp, op.bytes);
  } else {
    store.add_tx(block(op.key), op.host, op.packets);
    ref.add_tx(block(op.key), op.host, op.packets);
  }
}

class StoreDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StoreDifferential, RandomOpsMatchMapReference) {
  BlockStatsStore store;
  RefStore ref;
  for (const Op& op : random_ops(GetParam(), 5000)) apply(op, store, ref);
  expect_matches_reference(store, ref);
}

TEST_P(StoreDifferential, MergeMatchesMapReference) {
  BlockStatsStore sa, sb;
  RefStore ra, rb;
  for (const Op& op : random_ops(GetParam(), 3000)) apply(op, sa, ra);
  for (const Op& op : random_ops(GetParam() ^ 0xbeef, 3000)) apply(op, sb, rb);
  sa.merge(sb);
  ra.merge(rb);
  expect_matches_reference(sa, ra);
}

TEST_P(StoreDifferential, MergeIsCommutative) {
  BlockStatsStore a1, b1, a2, b2;
  {
    RefStore r;
    for (const Op& op : random_ops(GetParam(), 2000)) apply(op, a1, r);
    for (const Op& op : random_ops(GetParam(), 2000)) apply(op, a2, r);
    for (const Op& op : random_ops(GetParam() ^ 0x5a5a, 2000)) apply(op, b1, r);
    for (const Op& op : random_ops(GetParam() ^ 0x5a5a, 2000)) apply(op, b2, r);
  }

  a1.merge(b1);  // A + B
  b2.merge(a2);  // B + A

  // Same contents regardless of direction (row order may differ).
  ASSERT_EQ(a1.size(), b2.size());
  for (const BlockStatsStore::ConstRow x : a1) {
    const BlockStatsStore::ConstRow y = b2.find(x.block());
    ASSERT_TRUE(y);
    EXPECT_EQ(x.rx_packets(), y.rx_packets());
    EXPECT_EQ(x.rx_tcp_bytes(), y.rx_tcp_bytes());
    EXPECT_EQ(x.tx_packets(), y.tx_packets());
    EXPECT_EQ(x.tx_host_bits(), y.tx_host_bits());
    ASSERT_EQ(x.ips().size(), y.ips().size());
    for (std::size_t i = 0; i < x.ips().size(); ++i) {
      EXPECT_EQ(x.ips()[i].host, y.ips()[i].host);
      EXPECT_EQ(x.ips()[i].packets, y.ips()[i].packets);
    }
  }
}

TEST_P(StoreDifferential, MergeIsAssociativeAndMatchesSingleStore) {
  std::array<std::vector<Op>, 3> parts = {random_ops(GetParam(), 2000),
                                          random_ops(GetParam() ^ 0x77, 2000),
                                          random_ops(GetParam() ^ 0xfe, 2000)};
  std::array<BlockStatsStore, 3> shard;
  BlockStatsStore whole;
  RefStore ref;
  for (std::size_t i = 0; i < 3; ++i) {
    RefStore scratch;
    for (const Op& op : parts[i]) {
      apply(op, shard[i], scratch);
      apply(op, whole, ref);
    }
  }

  BlockStatsStore left = shard[0];  // (A + B) + C
  left.merge(shard[1]);
  left.merge(shard[2]);

  BlockStatsStore bc = shard[1];    // A + (B + C)
  bc.merge(shard[2]);
  BlockStatsStore right = shard[0];
  right.merge(bc);

  expect_matches_reference(left, ref);
  expect_matches_reference(right, ref);
  expect_matches_reference(whole, ref);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoreDifferential, ::testing::Values(3, 19, 71, 1337));

}  // namespace
}  // namespace mtscope::pipeline
