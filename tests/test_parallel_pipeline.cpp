// Differential suite: the sharded parallel collect/infer engine must be
// bit-identical to the serial path — same funnel counts, same
// dark/unclean/gray totals, and the exact same Block24Set membership — for
// every thread/shard configuration.  Under MTSCOPE_SANITIZE=thread this
// binary doubles as the ThreadSanitizer smoke test of the collector.
#include <gtest/gtest.h>

#include <future>
#include <ostream>
#include <vector>

#include "pipeline/collector.hpp"
#include "pipeline/inference.hpp"
#include "pipeline/parallel.hpp"
#include "pipeline/spoof_tolerance.hpp"
#include "sim/simulation.hpp"
#include "telemetry/ecdf.hpp"
#include "util/thread_pool.hpp"

namespace mtscope {
namespace {

struct ParallelConfig {
  unsigned threads;
  unsigned shards;
};

void PrintTo(const ParallelConfig& config, std::ostream* os) {
  *os << config.threads << " thread(s) x " << config.shards << " shard(s)";
}

// The shared workload: a multi-IXP, multi-day tiny universe, collected and
// inferred once on the serial path.
struct SerialBaseline {
  sim::Simulation simulation{sim::SimConfig::tiny(101)};
  std::vector<std::size_t> ixps = pipeline::all_ixps(simulation);
  std::vector<int> days{0, 1, 2};
  pipeline::VantageStats stats = pipeline::collect_stats(simulation, ixps, days);
  routing::SpecialPurposeRegistry registry = routing::SpecialPurposeRegistry::standard();
  pipeline::PipelineConfig config = [this] {
    pipeline::PipelineConfig c;
    c.volume_scale = simulation.config().volume_scale;
    c.spoof_tolerance_pkts =
        pipeline::compute_spoof_tolerance(stats, simulation.plan().unrouted_slash8s());
    return c;
  }();
  pipeline::InferenceEngine engine{config, simulation.plan().rib(), registry};
  pipeline::InferenceResult result = engine.infer(stats);
};

const SerialBaseline& baseline() {
  static const SerialBaseline shared;
  return shared;
}

void expect_identical(const pipeline::InferenceResult& actual,
                      const pipeline::InferenceResult& expected) {
  EXPECT_EQ(actual.funnel, expected.funnel);
  EXPECT_EQ(actual.unclean, expected.unclean);
  EXPECT_EQ(actual.gray, expected.gray);
  EXPECT_TRUE(actual.dark == expected.dark);  // full bitmap comparison
}

class ParallelDifferential : public ::testing::TestWithParam<ParallelConfig> {};

TEST_P(ParallelDifferential, CollectMatchesSerialStats) {
  const SerialBaseline& serial = baseline();
  const pipeline::CollectOptions options{GetParam().threads, GetParam().shards};
  const auto stats =
      pipeline::collect_stats(serial.simulation, serial.ixps, serial.days, options);

  EXPECT_EQ(stats.flows_ingested(), serial.stats.flows_ingested());
  EXPECT_EQ(stats.day_count(), serial.stats.day_count());
  EXPECT_EQ(stats.blocks().size(), serial.stats.blocks().size());
}

TEST_P(ParallelDifferential, CollectInferMatchesSerialResult) {
  const SerialBaseline& serial = baseline();
  const pipeline::CollectOptions options{GetParam().threads, GetParam().shards};
  const auto stats =
      pipeline::collect_stats(serial.simulation, serial.ixps, serial.days, options);
  const auto result = pipeline::parallel_infer(serial.engine, stats, GetParam().threads);
  expect_identical(result, serial.result);
}

TEST_P(ParallelDifferential, ParallelInferOverSerialStats) {
  // Decouples the two halves: the range-partitioned funnel alone must
  // reproduce the serial result on the serially collected stats.
  const SerialBaseline& serial = baseline();
  const auto result =
      pipeline::parallel_infer(serial.engine, serial.stats, GetParam().threads);
  expect_identical(result, serial.result);
}

INSTANTIATE_TEST_SUITE_P(ThreadShardGrid, ParallelDifferential,
                         ::testing::Values(ParallelConfig{1, 1}, ParallelConfig{1, 16},
                                           ParallelConfig{2, 4}, ParallelConfig{3, 5},
                                           ParallelConfig{4, 1}, ParallelConfig{4, 16},
                                           ParallelConfig{8, 16}));

TEST(ParallelEdgeCases, NoDatasets) {
  const SerialBaseline& serial = baseline();
  const std::vector<std::size_t> no_ixps;
  const std::vector<int> no_days;
  const pipeline::CollectOptions options{4, 8};
  const auto stats =
      pipeline::collect_stats(serial.simulation, no_ixps, no_days, options);
  EXPECT_EQ(stats.flows_ingested(), 0u);
  EXPECT_EQ(stats.day_count(), 0);
  EXPECT_TRUE(stats.blocks().empty());

  const auto result = pipeline::parallel_infer(serial.engine, stats, 4);
  EXPECT_EQ(result.funnel.seen, 0u);
  EXPECT_EQ(result.dark.size(), 0u);
}

TEST(ParallelEdgeCases, MoreThreadsThanWork) {
  // 16 threads for 2 datasets / tiny block counts must neither deadlock
  // nor change the result.
  const SerialBaseline& serial = baseline();
  const std::vector<int> one_day{0};
  const auto serial_stats =
      pipeline::collect_stats(serial.simulation, serial.ixps, one_day);
  const pipeline::CollectOptions options{16, 3};
  const auto stats =
      pipeline::collect_stats(serial.simulation, serial.ixps, one_day, options);
  EXPECT_EQ(stats.flows_ingested(), serial_stats.flows_ingested());
  EXPECT_EQ(stats.blocks().size(), serial_stats.blocks().size());
  expect_identical(pipeline::parallel_infer(serial.engine, stats, 16),
                   serial.engine.infer(serial_stats));
}

TEST(ConcurrentEcdfReads, ConstAccessorsAreThreadSafe) {
  // Regression for the lazy-sort data race: the first const read after an
  // add() used to sort samples_ without synchronisation, so two threads
  // querying the same const Ecdf both mutated it.  The accessors now
  // synchronise (double-checked atomic + mutex), which this test exercises
  // by hammering a freshly-unsorted Ecdf from every pool thread at once —
  // under MTSCOPE_SANITIZE=thread (the tsan_parallel_smoke target) TSan
  // flags any regression.
  telemetry::Ecdf shared;
  for (int i = 999; i >= 0; --i) shared.add(static_cast<double>(i));
  const telemetry::Ecdf& view = shared;

  constexpr unsigned kThreads = 8;
  util::ThreadPool pool(kThreads);
  std::vector<double> got(kThreads * 4, -1.0);  // one slot per task, no sharing
  std::vector<std::future<void>> jobs;
  jobs.reserve(got.size());
  for (unsigned t = 0; t < kThreads; ++t) {
    double* slot = &got[t * 4];
    jobs.push_back(pool.submit([&view, slot] { slot[0] = view.fraction_at_most(500.0); }));
    jobs.push_back(pool.submit([&view, slot] { slot[1] = view.quantile(0.25); }));
    jobs.push_back(pool.submit([&view, slot] { slot[2] = view.min(); }));
    jobs.push_back(pool.submit([&view, slot] { slot[3] = view.max(); }));
  }
  for (auto& job : jobs) job.get();
  for (unsigned t = 0; t < kThreads; ++t) {
    EXPECT_DOUBLE_EQ(got[t * 4], 501.0 / 1000.0);
    EXPECT_DOUBLE_EQ(got[t * 4 + 1], 249.0);
    EXPECT_DOUBLE_EQ(got[t * 4 + 2], 0.0);
    EXPECT_DOUBLE_EQ(got[t * 4 + 3], 999.0);
  }
}

}  // namespace
}  // namespace mtscope
