// Differential suite: the sharded parallel collect/infer engine must be
// bit-identical to the serial path — same funnel counts, same
// dark/unclean/gray totals, and the exact same Block24Set membership — for
// every thread/shard configuration.  Under MTSCOPE_SANITIZE=thread this
// binary doubles as the ThreadSanitizer smoke test of the collector.
#include <gtest/gtest.h>

#include <future>
#include <ostream>
#include <utility>
#include <vector>

#include "flow/flow_batch.hpp"
#include "pipeline/collector.hpp"
#include "pipeline/inference.hpp"
#include "pipeline/parallel.hpp"
#include "pipeline/shard_router.hpp"
#include "pipeline/spoof_tolerance.hpp"
#include "sim/simulation.hpp"
#include "telemetry/ecdf.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace mtscope {
namespace {

struct ParallelConfig {
  unsigned threads;
  unsigned shards;
};

void PrintTo(const ParallelConfig& config, std::ostream* os) {
  *os << config.threads << " thread(s) x " << config.shards << " shard(s)";
}

// The shared workload: a multi-IXP, multi-day tiny universe, collected and
// inferred once on the serial path.
struct SerialBaseline {
  sim::Simulation simulation{sim::SimConfig::tiny(101)};
  std::vector<std::size_t> ixps = pipeline::all_ixps(simulation);
  std::vector<int> days{0, 1, 2};
  pipeline::VantageStats stats = pipeline::collect_stats(simulation, ixps, days);
  routing::SpecialPurposeRegistry registry = routing::SpecialPurposeRegistry::standard();
  pipeline::PipelineConfig config = [this] {
    pipeline::PipelineConfig c;
    c.volume_scale = simulation.config().volume_scale;
    c.spoof_tolerance_pkts =
        pipeline::compute_spoof_tolerance(stats, simulation.plan().unrouted_slash8s());
    return c;
  }();
  pipeline::InferenceEngine engine{config, simulation.plan().rib(), registry};
  pipeline::InferenceResult result = engine.infer(stats);
};

const SerialBaseline& baseline() {
  static const SerialBaseline shared;
  return shared;
}

void expect_identical(const pipeline::InferenceResult& actual,
                      const pipeline::InferenceResult& expected) {
  EXPECT_EQ(actual.funnel, expected.funnel);
  EXPECT_EQ(actual.unclean, expected.unclean);
  EXPECT_EQ(actual.gray, expected.gray);
  EXPECT_TRUE(actual.dark == expected.dark);  // full bitmap comparison
}

/// Deep, order-insensitive store equality: every block row of `expected`
/// exists in `actual` with identical counters, tx host bitmap and per-IP
/// run.  Row *order* is the one thing the partitioning may legally change
/// (rows append in shard-fold order, not dataset order); everything the
/// rows contain may not.
void expect_stats_identical(const pipeline::VantageStats& actual,
                            const pipeline::VantageStats& expected) {
  EXPECT_EQ(actual.flows_ingested(), expected.flows_ingested());
  EXPECT_EQ(actual.day_count(), expected.day_count());
  ASSERT_EQ(actual.blocks().size(), expected.blocks().size());
  for (const auto row : expected.blocks()) {
    const auto mine = actual.blocks().find(row.block());
    ASSERT_TRUE(static_cast<bool>(mine)) << "missing block " << row.block().index();
    EXPECT_EQ(mine.rx_packets(), row.rx_packets());
    EXPECT_EQ(mine.rx_tcp_packets(), row.rx_tcp_packets());
    EXPECT_EQ(mine.rx_tcp_bytes(), row.rx_tcp_bytes());
    EXPECT_EQ(mine.rx_est_packets(), row.rx_est_packets());
    EXPECT_EQ(mine.tx_packets(), row.tx_packets());
    EXPECT_TRUE(mine.tx_host_bits() == row.tx_host_bits());
    const auto my_ips = mine.ips();
    const auto their_ips = row.ips();
    ASSERT_EQ(my_ips.size(), their_ips.size());
    for (std::size_t i = 0; i < my_ips.size(); ++i) {
      EXPECT_EQ(my_ips[i].host, their_ips[i].host);
      EXPECT_EQ(my_ips[i].packets, their_ips[i].packets);
      EXPECT_EQ(my_ips[i].tcp_packets, their_ips[i].tcp_packets);
      EXPECT_EQ(my_ips[i].tcp_bytes, their_ips[i].tcp_bytes);
    }
  }
}

class ParallelDifferential : public ::testing::TestWithParam<ParallelConfig> {};

TEST_P(ParallelDifferential, CollectMatchesSerialStats) {
  const SerialBaseline& serial = baseline();
  const pipeline::CollectOptions options{GetParam().threads, GetParam().shards};
  const auto stats =
      pipeline::collect_stats(serial.simulation, serial.ixps, serial.days, options);

  EXPECT_EQ(stats.flows_ingested(), serial.stats.flows_ingested());
  EXPECT_EQ(stats.day_count(), serial.stats.day_count());
  EXPECT_EQ(stats.blocks().size(), serial.stats.blocks().size());
}

TEST_P(ParallelDifferential, CollectInferMatchesSerialResult) {
  const SerialBaseline& serial = baseline();
  const pipeline::CollectOptions options{GetParam().threads, GetParam().shards};
  const auto stats =
      pipeline::collect_stats(serial.simulation, serial.ixps, serial.days, options);
  const auto result = pipeline::parallel_infer(serial.engine, stats, GetParam().threads);
  expect_identical(result, serial.result);
}

TEST_P(ParallelDifferential, ParallelInferOverSerialStats) {
  // Decouples the two halves: the range-partitioned funnel alone must
  // reproduce the serial result on the serially collected stats.
  const SerialBaseline& serial = baseline();
  const auto result =
      pipeline::parallel_infer(serial.engine, serial.stats, GetParam().threads);
  expect_identical(result, serial.result);
}

INSTANTIATE_TEST_SUITE_P(ThreadShardGrid, ParallelDifferential,
                         ::testing::Values(ParallelConfig{1, 1}, ParallelConfig{1, 16},
                                           ParallelConfig{2, 4}, ParallelConfig{3, 5},
                                           ParallelConfig{4, 1}, ParallelConfig{4, 16},
                                           ParallelConfig{8, 16}));

// --- batched differential grid ---------------------------------------------
// The batch size is the one knob the thread/shard grid above does not
// move.  Batch 1 degenerates the SoA stage to per-record work (the decode
// arithmetic alone must carry bit-identicality), 4096 is the production
// default, 64 exercises many partially-filled router segments per
// dataset.  Crossed with threads and shards this is the full staged
// pipeline: parse -> route -> shard-affine insert -> disjoint merge.

struct BatchedConfig {
  unsigned batch;
  unsigned threads;
  unsigned shards;
};

void PrintTo(const BatchedConfig& config, std::ostream* os) {
  *os << "batch " << config.batch << " x " << config.threads << " thread(s) x "
      << config.shards << " shard(s)";
}

std::vector<BatchedConfig> batched_grid() {
  std::vector<BatchedConfig> grid;
  for (const unsigned batch : {1u, 64u, 4096u}) {
    for (const unsigned threads : {1u, 2u, 4u}) {
      for (const unsigned shards : {1u, 4u, 16u}) grid.push_back({batch, threads, shards});
    }
  }
  return grid;
}

class BatchedDifferential : public ::testing::TestWithParam<BatchedConfig> {};

TEST_P(BatchedDifferential, CollectStoreAndInferMatchSerial) {
  const SerialBaseline& serial = baseline();
  const pipeline::CollectOptions options{GetParam().threads, GetParam().shards, nullptr,
                                         GetParam().batch};
  const auto stats =
      pipeline::collect_stats(serial.simulation, serial.ixps, serial.days, options);
  expect_stats_identical(stats, serial.stats);
  expect_identical(pipeline::parallel_infer(serial.engine, stats, GetParam().threads),
                   serial.result);
}

INSTANTIATE_TEST_SUITE_P(BatchThreadShardGrid, BatchedDifferential,
                         ::testing::ValuesIn(batched_grid()));

// --- merge disjointness ------------------------------------------------------
// The collector's contention-free merge rests on one claim: rows dealt by
// Block24 % shards make the shard columns disjoint key spaces, so
// per-shard folds never touch the same block and the final cross-shard
// fold is pure concatenation with an exact row total.  These tests state
// the claim directly against the merge primitive, outside the collector.

std::vector<flow::FlowRecord> merge_test_records(std::size_t count, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<flow::FlowRecord> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    flow::FlowRecord r;
    // A small /16 so blocks repeat and per-IP runs grow past the inline
    // buffer — the merge paths with actual content to get wrong.
    r.key.src = net::Ipv4Addr(0x0a640000u + static_cast<std::uint32_t>(rng.uniform(1u << 14)));
    r.key.dst = net::Ipv4Addr(0xc6336400u + static_cast<std::uint32_t>(rng.uniform(1u << 14)));
    r.key.proto = rng.chance(0.6) ? net::IpProto::kTcp : net::IpProto::kUdp;
    r.packets = 1 + rng.uniform(5);
    r.bytes = r.packets * (40 + rng.uniform(1000));
    out.push_back(r);
  }
  return out;
}

TEST(MergeDisjointness, ShardedBuildFoldsToDirectBuild) {
  constexpr unsigned kShards = 8;
  constexpr std::uint32_t kRate = 100;
  const auto records = merge_test_records(20'000, 71);

  pipeline::VantageStats direct;
  direct.add_flows(records, kRate, /*day=*/0);

  // The collector's exact mechanism: batch -> route -> shard-affine adds.
  std::vector<pipeline::VantageStats> parts(kShards);
  parts[0].note_day(0);
  flow::FlowBatch batch;
  pipeline::ShardRouter router;
  const std::span<const flow::FlowRecord> all(records);
  for (std::size_t first = 0; first < all.size(); first += 512) {
    batch.decode(all.subspan(first, std::min<std::size_t>(512, all.size() - first)), kRate);
    router.route(batch, kShards);
    for (unsigned s = 0; s < kShards; ++s) {
      parts[s].add_batch_rx(batch, router.rx_rows(s));
      parts[s].add_batch_tx(batch, router.tx_rows(s));
    }
  }

  // Disjointness itself: a block lives in exactly the shard its key
  // selects, so the shard row counts sum to the merged row count.
  std::size_t total_rows = 0;
  for (unsigned s = 0; s < kShards; ++s) {
    for (const auto row : parts[s].blocks()) {
      EXPECT_EQ(row.block().index() % kShards, s);
    }
    total_rows += parts[s].blocks().size();
  }
  EXPECT_EQ(total_rows, direct.blocks().size());

  std::vector<const pipeline::VantageStats*> rest;
  for (unsigned s = 1; s < kShards; ++s) rest.push_back(&parts[s]);
  const pipeline::VantageStats merged =
      pipeline::merge_stats(std::move(parts[0]), rest, total_rows);
  expect_stats_identical(merged, direct);
}

TEST(MergeDisjointness, FoldShapeDoesNotChangeResult) {
  constexpr std::uint32_t kRate = 50;
  const auto records = merge_test_records(6'000, 73);
  const std::span<const flow::FlowRecord> all(records);

  // Three overlapping parts (NOT disjoint): merge must still be
  // order-free because every quantity is a sum / OR / sorted union.
  pipeline::VantageStats a, b, c;
  a.add_flows(all.subspan(0, 3'000), kRate, 0);
  b.add_flows(all.subspan(2'000, 3'000), kRate, 1);
  c.add_flows(all.subspan(1'000, 2'000), kRate, 0);

  const std::vector<const pipeline::VantageStats*> bc{&b, &c};
  const std::vector<const pipeline::VantageStats*> ba{&b, &a};
  const pipeline::VantageStats left = pipeline::merge_stats(a, bc);
  const pipeline::VantageStats right = pipeline::merge_stats(c, ba);
  expect_stats_identical(left, right);
}

TEST(MergeDisjointness, ExactReserveDoesNotChangeResult) {
  // The collector passes the exact disjoint row total so the output index
  // is built once; the reserve is an optimization, never a semantic.
  constexpr std::uint32_t kRate = 10;
  const auto records = merge_test_records(4'000, 79);
  pipeline::VantageStats a, b;
  a.add_flows(std::span(records).first(2'000), kRate, 0);
  b.add_flows(std::span(records).last(2'000), kRate, 0);

  const std::vector<const pipeline::VantageStats*> rest{&b};
  const pipeline::VantageStats no_reserve = pipeline::merge_stats(a, rest);
  const pipeline::VantageStats generous =
      pipeline::merge_stats(a, rest, a.blocks().size() + b.blocks().size());
  expect_stats_identical(no_reserve, generous);
}

TEST(ParallelEdgeCases, NoDatasets) {
  const SerialBaseline& serial = baseline();
  const std::vector<std::size_t> no_ixps;
  const std::vector<int> no_days;
  const pipeline::CollectOptions options{4, 8};
  const auto stats =
      pipeline::collect_stats(serial.simulation, no_ixps, no_days, options);
  EXPECT_EQ(stats.flows_ingested(), 0u);
  EXPECT_EQ(stats.day_count(), 0);
  EXPECT_TRUE(stats.blocks().empty());

  const auto result = pipeline::parallel_infer(serial.engine, stats, 4);
  EXPECT_EQ(result.funnel.seen, 0u);
  EXPECT_EQ(result.dark.size(), 0u);
}

TEST(ParallelEdgeCases, MoreThreadsThanWork) {
  // 16 threads for 2 datasets / tiny block counts must neither deadlock
  // nor change the result.
  const SerialBaseline& serial = baseline();
  const std::vector<int> one_day{0};
  const auto serial_stats =
      pipeline::collect_stats(serial.simulation, serial.ixps, one_day);
  const pipeline::CollectOptions options{16, 3};
  const auto stats =
      pipeline::collect_stats(serial.simulation, serial.ixps, one_day, options);
  EXPECT_EQ(stats.flows_ingested(), serial_stats.flows_ingested());
  EXPECT_EQ(stats.blocks().size(), serial_stats.blocks().size());
  expect_identical(pipeline::parallel_infer(serial.engine, stats, 16),
                   serial.engine.infer(serial_stats));
}

TEST(ConcurrentEcdfReads, ConstAccessorsAreThreadSafe) {
  // Regression for the lazy-sort data race: the first const read after an
  // add() used to sort samples_ without synchronisation, so two threads
  // querying the same const Ecdf both mutated it.  The accessors now
  // synchronise (double-checked atomic + mutex), which this test exercises
  // by hammering a freshly-unsorted Ecdf from every pool thread at once —
  // under MTSCOPE_SANITIZE=thread (the tsan_parallel_smoke target) TSan
  // flags any regression.
  telemetry::Ecdf shared;
  for (int i = 999; i >= 0; --i) shared.add(static_cast<double>(i));
  const telemetry::Ecdf& view = shared;

  constexpr unsigned kThreads = 8;
  util::ThreadPool pool(kThreads);
  std::vector<double> got(kThreads * 4, -1.0);  // one slot per task, no sharing
  std::vector<std::future<void>> jobs;
  jobs.reserve(got.size());
  for (unsigned t = 0; t < kThreads; ++t) {
    double* slot = &got[t * 4];
    jobs.push_back(pool.submit([&view, slot] { slot[0] = view.fraction_at_most(500.0); }));
    jobs.push_back(pool.submit([&view, slot] { slot[1] = view.quantile(0.25); }));
    jobs.push_back(pool.submit([&view, slot] { slot[2] = view.min(); }));
    jobs.push_back(pool.submit([&view, slot] { slot[3] = view.max(); }));
  }
  for (auto& job : jobs) job.get();
  for (unsigned t = 0; t < kThreads; ++t) {
    EXPECT_DOUBLE_EQ(got[t * 4], 501.0 / 1000.0);
    EXPECT_DOUBLE_EQ(got[t * 4 + 1], 249.0);
    EXPECT_DOUBLE_EQ(got[t * 4 + 2], 0.0);
    EXPECT_DOUBLE_EQ(got[t * 4 + 3], 999.0);
  }
}

}  // namespace
}  // namespace mtscope
