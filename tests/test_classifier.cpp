#include "pipeline/classifier.hpp"

#include <gtest/gtest.h>

namespace mtscope::pipeline {
namespace {

sim::IspBlockObservation make_obs(std::uint32_t block_index, sim::BlockRole role,
                                  std::uint16_t size, std::uint64_t rx_packets,
                                  std::uint64_t tx_week) {
  sim::IspBlockObservation obs;
  obs.block = net::Block24(block_index);
  obs.role = role;
  obs.tx_packets_week = tx_week;
  if (rx_packets > 0) {
    flow::FlowRecord r;
    r.key.dst = obs.block.first_address();
    r.key.proto = net::IpProto::kTcp;
    r.packets = rx_packets;
    r.bytes = std::uint64_t{size} * rx_packets;
    obs.inbound.add_flow(r);
  }
  return obs;
}

TEST(Classifier, ConfusionMatrixCounts) {
  std::vector<sim::IspBlockObservation> data = {
      make_obs(1, sim::BlockRole::kDark, 40, 100, 0),        // dark, small -> TP
      make_obs(2, sim::BlockRole::kDark, 60, 100, 0),        // dark, big   -> FN
      make_obs(3, sim::BlockRole::kActive, 40, 100, 50'000), // active, small -> FP
      make_obs(4, sim::BlockRole::kActive, 900, 100, 50'000),// active, big -> TN
      make_obs(5, sim::BlockRole::kActive, 900, 100, 5),     // excluded (middle class)
  };
  LabelConfig labels;
  labels.active_min_tx_packets = 10'000;
  const auto outcome = evaluate_classifier(data, SizeFeature::kAverage, 44.0, labels);
  EXPECT_EQ(outcome.true_positive, 1u);
  EXPECT_EQ(outcome.false_negative, 1u);
  EXPECT_EQ(outcome.false_positive, 1u);
  EXPECT_EQ(outcome.true_negative, 1u);
  EXPECT_DOUBLE_EQ(outcome.fpr(), 0.5);
  EXPECT_DOUBLE_EQ(outcome.fnr(), 0.5);
  EXPECT_DOUBLE_EQ(outcome.tpr(), 0.5);
  EXPECT_DOUBLE_EQ(outcome.f1(), 2.0 * 1 / (2.0 * 1 + 1 + 1));
}

TEST(Classifier, MedianVsAverageDiffer) {
  // 60% packets at 40 bytes, 40% at 1400: median 40, average 584.
  sim::IspBlockObservation obs = make_obs(1, sim::BlockRole::kActive, 40, 60, 50'000);
  flow::FlowRecord big;
  big.key.dst = obs.block.first_address();
  big.key.proto = net::IpProto::kTcp;
  big.packets = 40;
  big.bytes = 1400ull * 40;
  obs.inbound.add_flow(big);

  std::vector<sim::IspBlockObservation> data = {obs};
  LabelConfig labels;
  labels.active_min_tx_packets = 10'000;
  const auto median = evaluate_classifier(data, SizeFeature::kMedian, 44.0, labels);
  const auto average = evaluate_classifier(data, SizeFeature::kAverage, 44.0, labels);
  EXPECT_EQ(median.false_positive, 1u);   // median 40 <= 44: classified dark
  EXPECT_EQ(average.true_negative, 1u);   // average 584 > 44: classified active
}

TEST(Classifier, NoTcpNeverClassifiedDark) {
  sim::IspBlockObservation obs;
  obs.block = net::Block24(1);
  obs.role = sim::BlockRole::kDark;
  flow::FlowRecord udp;
  udp.key.dst = obs.block.first_address();
  udp.key.proto = net::IpProto::kUdp;
  udp.packets = 10;
  udp.bytes = 400;
  obs.inbound.add_flow(udp);

  std::vector<sim::IspBlockObservation> data = {obs};
  const auto outcome = evaluate_classifier(data, SizeFeature::kAverage, 44.0, LabelConfig{});
  EXPECT_EQ(outcome.false_negative, 1u);
}

TEST(Classifier, VolumeScaleRescalesActiveFloor) {
  std::vector<sim::IspBlockObservation> data = {
      make_obs(1, sim::BlockRole::kActive, 900, 100, 15'000),
  };
  LabelConfig paper_scale;  // floor 10M: 15k tx is "excluded"
  auto summary = summarize_labels(data, paper_scale);
  EXPECT_EQ(summary.excluded, 1u);

  LabelConfig scaled;
  scaled.volume_scale = 1e-3;  // floor 10k: 15k tx is "active"
  summary = summarize_labels(data, scaled);
  EXPECT_EQ(summary.labelled_active, 1u);
}

TEST(Classifier, LabelSummaryPartition) {
  std::vector<sim::IspBlockObservation> data = {
      make_obs(1, sim::BlockRole::kDark, 40, 10, 0),
      make_obs(2, sim::BlockRole::kActive, 900, 10, 20'000'000),
      make_obs(3, sim::BlockRole::kActive, 900, 10, 3),
      make_obs(4, sim::BlockRole::kDark, 40, 0, 0),  // no inbound: excluded
  };
  const auto summary = summarize_labels(data, LabelConfig{});
  EXPECT_EQ(summary.total, 4u);
  EXPECT_EQ(summary.labelled_dark, 1u);
  EXPECT_EQ(summary.labelled_active, 1u);
  EXPECT_EQ(summary.excluded, 2u);
}

TEST(Classifier, SweepCoversBothFeatures) {
  std::vector<sim::IspBlockObservation> data = {
      make_obs(1, sim::BlockRole::kDark, 40, 10, 0),
      make_obs(2, sim::BlockRole::kActive, 900, 10, 20'000'000),
  };
  const double thresholds[] = {40.0, 42.0, 44.0, 46.0};
  const auto outcomes = sweep_classifier(data, thresholds, LabelConfig{});
  ASSERT_EQ(outcomes.size(), 8u);
  EXPECT_EQ(outcomes[0].feature, SizeFeature::kMedian);
  EXPECT_EQ(outcomes[4].feature, SizeFeature::kAverage);
  // All thresholds correctly separate this trivially separable data.
  for (const auto& o : outcomes) {
    EXPECT_DOUBLE_EQ(o.f1(), 1.0) << size_feature_name(o.feature) << " " << o.threshold;
  }
}

TEST(Classifier, EmptyDataYieldsZeroRates) {
  const auto outcome =
      evaluate_classifier({}, SizeFeature::kAverage, 44.0, LabelConfig{});
  EXPECT_DOUBLE_EQ(outcome.fpr(), 0.0);
  EXPECT_DOUBLE_EQ(outcome.fnr(), 0.0);
  EXPECT_DOUBLE_EQ(outcome.f1(), 0.0);
}

TEST(Classifier, FeatureNames) {
  EXPECT_EQ(size_feature_name(SizeFeature::kMedian), "median");
  EXPECT_EQ(size_feature_name(SizeFeature::kAverage), "average");
}

}  // namespace
}  // namespace mtscope::pipeline
