// util::ThreadPool, pinned directly for the first time — above all the
// shutdown contract: every future an accepted submit() returned must
// become ready, and a submit() that loses the race with shutdown() must
// throw rather than enqueue a task nobody will run.  On the pre-fix pool
// (no stopping check in submit) SubmitAfterShutdownThrows sees no throw
// and SubmitRacingShutdownNeverStrandsAFuture times out on a stranded
// future; both pass with the locked check in place.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

namespace mtscope::util {
namespace {

using namespace std::chrono_literals;

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([&ran] { ran.fetch_add(1); }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  pool.submit([] {}).get();
}

TEST(ThreadPool, TaskExceptionReachesTheFuture) {
  ThreadPool pool(2);
  auto future = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ShutdownDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  ThreadPool pool(2);
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.submit([&ran] {
      std::this_thread::sleep_for(1ms);
      ran.fetch_add(1);
    }));
  }
  pool.shutdown();
  EXPECT_EQ(ran.load(), 32);
  for (auto& future : futures) {
    ASSERT_EQ(future.wait_for(0s), std::future_status::ready);
  }
}

TEST(ThreadPool, SubmitAfterShutdownThrows) {
  ThreadPool pool(2);
  pool.submit([] {}).get();
  pool.shutdown();
  EXPECT_THROW(pool.submit([] {}), std::runtime_error);
  pool.shutdown();  // idempotent
  EXPECT_THROW(pool.submit([] {}), std::runtime_error);
}

// The original race: submitters racing the teardown.  Every submit must
// either throw (task rejected) or hand back a future that becomes ready —
// never a silently dropped task.
TEST(ThreadPool, SubmitRacingShutdownNeverStrandsAFuture) {
  for (int round = 0; round < 20; ++round) {
    ThreadPool pool(2);
    std::atomic<bool> go{false};
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> ran{0};
    std::atomic<std::uint64_t> rejected{0};

    std::vector<std::thread> submitters;
    std::vector<std::vector<std::future<void>>> futures(4);
    for (std::size_t t = 0; t < futures.size(); ++t) {
      submitters.emplace_back([&, t] {
        while (!go.load()) {
        }
        for (;;) {
          try {
            futures[t].push_back(pool.submit([&ran] { ran.fetch_add(1); }));
            accepted.fetch_add(1);
          } catch (const std::runtime_error&) {
            rejected.fetch_add(1);
            return;
          }
        }
      });
    }

    go.store(true);
    std::this_thread::sleep_for(1ms);
    pool.shutdown();
    for (auto& thread : submitters) thread.join();

    for (auto& per_thread : futures) {
      for (auto& future : per_thread) {
        // Pre-fix, a task enqueued after the workers drained leaves this
        // future pending forever; 5s is a hang, not a slow machine.
        ASSERT_EQ(future.wait_for(5s), std::future_status::ready) << "stranded future";
      }
    }
    EXPECT_EQ(ran.load(), accepted.load());
    EXPECT_GE(rejected.load(), futures.size());  // every submitter saw the throw
  }
}

}  // namespace
}  // namespace mtscope::util
