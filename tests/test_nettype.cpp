#include "geo/nettype.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace mtscope::geo {
namespace {

TEST(NetType, ParseVariants) {
  EXPECT_EQ(parse_net_type("ISP").value(), NetType::kIsp);
  EXPECT_EQ(parse_net_type("isp").value(), NetType::kIsp);
  EXPECT_EQ(parse_net_type("Enterprise").value(), NetType::kEnterprise);
  EXPECT_EQ(parse_net_type("Education").value(), NetType::kEducation);
  EXPECT_EQ(parse_net_type("Data Center").value(), NetType::kDataCenter);
  EXPECT_EQ(parse_net_type("datacenter").value(), NetType::kDataCenter);
  EXPECT_EQ(parse_net_type("data_center").value(), NetType::kDataCenter);
  EXPECT_EQ(parse_net_type("  ISP  ").value(), NetType::kIsp);
  EXPECT_FALSE(parse_net_type("hosting"));
  EXPECT_FALSE(parse_net_type(""));
}

TEST(NetType, NamesRoundTrip) {
  for (NetType t : kAllNetTypes) {
    EXPECT_EQ(parse_net_type(net_type_name(t)).value(), t);
  }
}

TEST(NetTypeDb, AddResolve) {
  NetTypeDb db;
  db.add(net::AsNumber(100), NetType::kEducation);
  EXPECT_EQ(db.resolve(net::AsNumber(100)).value(), NetType::kEducation);
  EXPECT_FALSE(db.resolve(net::AsNumber(999)));
  db.add(net::AsNumber(100), NetType::kIsp);  // overwrite
  EXPECT_EQ(db.resolve(net::AsNumber(100)).value(), NetType::kIsp);
  EXPECT_EQ(db.size(), 1u);
}

TEST(NetTypeDb, SaveLoadRoundTrip) {
  NetTypeDb db;
  db.add(net::AsNumber(1), NetType::kIsp);
  db.add(net::AsNumber(2), NetType::kDataCenter);
  std::stringstream buffer;
  db.save(buffer);
  auto loaded = NetTypeDb::load(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.error().to_string();
  EXPECT_EQ(loaded.value().size(), 2u);
  EXPECT_EQ(loaded.value().resolve(net::AsNumber(2)).value(), NetType::kDataCenter);
}

TEST(NetTypeDb, LoadRejectsMalformed) {
  std::stringstream bad_type("100,hosting\n");
  EXPECT_FALSE(NetTypeDb::load(bad_type).ok());
  std::stringstream bad_asn("x,ISP\n");
  EXPECT_FALSE(NetTypeDb::load(bad_asn).ok());
  std::stringstream missing("100\n");
  EXPECT_FALSE(NetTypeDb::load(missing).ok());
}

}  // namespace
}  // namespace mtscope::geo
