#include "util/table.hpp"

#include <gtest/gtest.h>

namespace mtscope::util {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"Name", "Count"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "12345"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| Name  |"), std::string::npos);
  EXPECT_NE(out.find("| alpha |"), std::string::npos);
  EXPECT_NE(out.find("| 12345 |"), std::string::npos);  // right-aligned numbers
}

TEST(TextTable, RowCellCountValidated) {
  TextTable t({"A", "B"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
}

TEST(TextTable, EmptyHeadersRejected) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTable, SeparatorInsertsLine) {
  TextTable t({"X"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  const std::string out = t.render();
  // header line + top/bottom + separator = 4 horizontal rules
  std::size_t rules = 0;
  for (std::size_t pos = out.find("+-"); pos != std::string::npos; pos = out.find("+-", pos + 1)) {
    ++rules;
  }
  EXPECT_EQ(rules, 4u);
}

TEST(TextTable, AlignmentOverride) {
  TextTable t({"L", "R"});
  t.set_alignment(1, Align::kLeft);
  t.add_row({"x", "y"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| x | y |"), std::string::npos);
}

TEST(TextTable, SetAlignmentBadColumnThrows) {
  TextTable t({"A"});
  EXPECT_THROW(t.set_alignment(5, Align::kLeft), std::out_of_range);
}

TEST(Fixed, Precision) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(2.0, 0), "2");
}

TEST(Percent, Formats) {
  EXPECT_EQ(percent(0.1234), "12.34%");
  EXPECT_EQ(percent(1.0, 0), "100%");
}

}  // namespace
}  // namespace mtscope::util
