#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace mtscope::util {
namespace {

TEST(CsvParse, Plain) {
  auto r = parse_csv_line("a,b,c");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(CsvParse, QuotedWithComma) {
  auto r = parse_csv_line(R"(x,"a,b",y)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()[1], "a,b");
}

TEST(CsvParse, EscapedQuote) {
  auto r = parse_csv_line(R"("say ""hi""")");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()[0], "say \"hi\"");
}

TEST(CsvParse, UnterminatedQuoteFails) {
  auto r = parse_csv_line(R"("oops)");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "csv.unterminated_quote");
}

TEST(CsvParse, EmptyLineIsOneEmptyField) {
  auto r = parse_csv_line("");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), std::vector<std::string>{""});
}

TEST(CsvEscape, OnlyWhenNeeded) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("q\"q"), "\"q\"\"q\"");
}

TEST(CsvRoundTrip, WriterThenReader) {
  std::stringstream buffer;
  CsvWriter writer(buffer);
  writer.write_row({"ip", "count"});
  writer.write_row({"192.0.2.1", "1,000"});
  writer.write_row({"note", "line with \"quotes\""});

  auto rows = read_csv(buffer);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 3u);
  EXPECT_EQ(rows.value()[1][1], "1,000");
  EXPECT_EQ(rows.value()[2][1], "line with \"quotes\"");
}

TEST(CsvRead, SkipsBlankAndHandlesCrLf) {
  std::stringstream buffer("a,b\r\n\r\nc,d\n");
  auto rows = read_csv(buffer);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 2u);
  EXPECT_EQ(rows.value()[0][1], "b");
}

}  // namespace
}  // namespace mtscope::util
