#include "pipeline/evaluation.hpp"

#include <gtest/gtest.h>

namespace mtscope::pipeline {
namespace {

class EvaluationTest : public ::testing::Test {
 protected:
  static const sim::AddressPlan& plan() {
    static const sim::AddressPlan instance{sim::SimConfig::tiny(17)};
    return instance;
  }
};

TEST_F(EvaluationTest, GroundTruthCategorisation) {
  trie::Block24Set inferred;
  // Pick one known-dark, one known-active and one unallocated block.
  net::Block24 dark_block;
  plan().dark_blocks().for_each([&](net::Block24 b) {
    if (dark_block.index() == 0) dark_block = b;
  });
  net::Block24 active_block;
  plan().active_blocks().for_each([&](net::Block24 b) {
    if (active_block.index() == 0) active_block = b;
  });
  const net::Block24 unallocated(0x010203);

  inferred.insert(dark_block);
  inferred.insert(active_block);
  inferred.insert(unallocated);

  const GroundTruthEval eval = evaluate_against_ground_truth(inferred, plan());
  EXPECT_EQ(eval.inferred, 3u);
  EXPECT_EQ(eval.truly_dark, 1u);
  EXPECT_EQ(eval.truly_active, 1u);
  EXPECT_EQ(eval.unallocated, 1u);
  EXPECT_NEAR(eval.false_positive_rate(), 1.0 / 3.0, 1e-9);
}

TEST_F(EvaluationTest, EmptyInferredSet) {
  const GroundTruthEval eval = evaluate_against_ground_truth(trie::Block24Set{}, plan());
  EXPECT_EQ(eval.inferred, 0u);
  EXPECT_DOUBLE_EQ(eval.false_positive_rate(), 0.0);
}

TEST_F(EvaluationTest, TelescopeCoverageCounts) {
  const auto& teu2 = plan().telescopes()[2];
  trie::Block24Set inferred;
  inferred.insert(teu2.blocks[0]);
  inferred.insert(teu2.blocks[1]);

  const TelescopeCoverage coverage =
      evaluate_telescope_coverage(inferred, teu2, [](net::Block24) { return true; });
  EXPECT_EQ(coverage.code, "TEU2");
  EXPECT_EQ(coverage.size, 8u);
  EXPECT_EQ(coverage.actually_dark, 8u);
  EXPECT_EQ(coverage.inferred, 2u);
  EXPECT_DOUBLE_EQ(coverage.coverage_of_dark(), 0.25);
}

TEST_F(EvaluationTest, TelescopeCoverageWithLeasePredicate) {
  const auto& teu1 = plan().telescopes()[1];
  trie::Block24Set inferred;  // nothing inferred

  // Mark half the blocks as leased (not dark) through the predicate.
  const TelescopeCoverage coverage = evaluate_telescope_coverage(
      inferred, teu1, [&](net::Block24 b) { return (b.index() % 2) == 0; });
  EXPECT_EQ(coverage.actually_dark, teu1.blocks.size() / 2);
  EXPECT_EQ(coverage.inferred, 0u);
  EXPECT_DOUBLE_EQ(coverage.coverage_of_dark(), 0.0);
}

TEST_F(EvaluationTest, CoverageHandlesEmptyDarkSet) {
  const auto& teu2 = plan().telescopes()[2];
  const TelescopeCoverage coverage = evaluate_telescope_coverage(
      trie::Block24Set{}, teu2, [](net::Block24) { return false; });
  EXPECT_EQ(coverage.actually_dark, 0u);
  EXPECT_DOUBLE_EQ(coverage.coverage_of_dark(), 0.0);
}

}  // namespace
}  // namespace mtscope::pipeline
