// Byte-order helpers and CRC32: the shared foundation under the IPFIX /
// NetFlow codecs, packet-header serializers and the telescope snapshot
// format.  Pins the wire bytes for each width in both endiannesses, the
// incremental-CRC contract, and the IEEE 802.3 check value.
#include "util/bytes.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string_view>
#include <vector>

namespace mtscope {
namespace {

std::vector<std::uint8_t> bytes_of(std::string_view text) {
  return {text.begin(), text.end()};
}

TEST(Bytes, BigEndianRoundTripPinsWireOrder) {
  std::vector<std::uint8_t> out;
  util::be_put_u16(out, 0x1234);
  util::be_put_u32(out, 0xdeadbeef);
  util::be_put_u64(out, 0x0102030405060708ull);
  const std::vector<std::uint8_t> expected = {0x12, 0x34, 0xde, 0xad, 0xbe, 0xef,
                                              0x01, 0x02, 0x03, 0x04, 0x05, 0x06,
                                              0x07, 0x08};
  EXPECT_EQ(out, expected);
  EXPECT_EQ(util::be_get_u16(out, 0), 0x1234);
  EXPECT_EQ(util::be_get_u32(out, 2), 0xdeadbeefu);
  EXPECT_EQ(util::be_get_u64(out, 6), 0x0102030405060708ull);
}

TEST(Bytes, LittleEndianRoundTripPinsWireOrder) {
  std::vector<std::uint8_t> out;
  util::le_put_u16(out, 0x1234);
  util::le_put_u32(out, 0xdeadbeef);
  util::le_put_u64(out, 0x0102030405060708ull);
  const std::vector<std::uint8_t> expected = {0x34, 0x12, 0xef, 0xbe, 0xad, 0xde,
                                              0x08, 0x07, 0x06, 0x05, 0x04, 0x03,
                                              0x02, 0x01};
  EXPECT_EQ(out, expected);
  EXPECT_EQ(util::le_get_u16(out, 0), 0x1234);
  EXPECT_EQ(util::le_get_u32(out, 2), 0xdeadbeefu);
  EXPECT_EQ(util::le_get_u64(out, 6), 0x0102030405060708ull);
}

TEST(Bytes, EndiannessesMirrorEachOther) {
  std::vector<std::uint8_t> be, le;
  util::be_put_u32(be, 0x11223344);
  util::le_put_u32(le, 0x11223344);
  const std::vector<std::uint8_t> reversed(le.rbegin(), le.rend());
  EXPECT_EQ(be, reversed);
}

TEST(Bytes, LePatchOverwritesInPlace) {
  std::vector<std::uint8_t> out;
  util::le_put_u32(out, 0);          // placeholder
  util::le_put_u32(out, 0xffffffff); // neighbour must stay untouched
  util::le_patch_u32(out, 0, 0xcafebabe);
  EXPECT_EQ(util::le_get_u32(out, 0), 0xcafebabeu);
  EXPECT_EQ(util::le_get_u32(out, 4), 0xffffffffu);
}

TEST(Bytes, LePatchEveryWidthMatchesLePut) {
  // The patch family writes into pre-sized frames (serve/wire.hpp); each
  // width must produce exactly the bytes le_put_* appends.
  std::vector<std::uint8_t> put;
  util::le_put_u16(put, 0xbeef);
  util::le_put_u32(put, 0x11223344);
  util::le_put_u64(put, 0x0102030405060708ull);
  std::vector<std::uint8_t> patched(put.size(), 0xaa);
  util::le_patch_u16(patched, 0, 0xbeef);
  util::le_patch_u32(patched, 2, 0x11223344);
  util::le_patch_u64(patched, 6, 0x0102030405060708ull);
  EXPECT_EQ(patched, put);
  EXPECT_EQ(util::le_get_u16(patched, 0), 0xbeefu);
  EXPECT_EQ(util::le_get_u64(patched, 6), 0x0102030405060708ull);
}

TEST(Bytes, ExtremeValuesSurvive) {
  std::vector<std::uint8_t> out;
  util::le_put_u64(out, 0);
  util::le_put_u64(out, ~0ull);
  util::be_put_u64(out, 0);
  util::be_put_u64(out, ~0ull);
  EXPECT_EQ(util::le_get_u64(out, 0), 0u);
  EXPECT_EQ(util::le_get_u64(out, 8), ~0ull);
  EXPECT_EQ(util::be_get_u64(out, 16), 0u);
  EXPECT_EQ(util::be_get_u64(out, 24), ~0ull);
}

TEST(Crc32, IeeeCheckValue) {
  // The standard check value for the IEEE 802.3 CRC: crc32("123456789").
  EXPECT_EQ(util::crc32(bytes_of("123456789")), 0xcbf43926u);
}

TEST(Crc32, EmptyInputIsZero) {
  EXPECT_EQ(util::crc32({}), 0u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const auto data = bytes_of("the quick brown fox jumps over the lazy dog");
  const std::uint32_t whole = util::crc32(data);
  for (std::size_t split = 0; split <= data.size(); ++split) {
    const std::span<const std::uint8_t> all(data);
    const std::uint32_t head = util::crc32(all.subspan(0, split));
    EXPECT_EQ(util::crc32(all.subspan(split), head), whole) << "split at " << split;
  }
}

TEST(Crc32, DetectsSingleBitFlips) {
  auto data = bytes_of("MTSNAP payload");
  const std::uint32_t clean = util::crc32(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      data[i] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_NE(util::crc32(data), clean) << "byte " << i << " bit " << bit;
      data[i] ^= static_cast<std::uint8_t>(1u << bit);
    }
  }
}

}  // namespace
}  // namespace mtscope
