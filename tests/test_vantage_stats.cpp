#include "pipeline/vantage_stats.hpp"

#include <gtest/gtest.h>

#include <set>

namespace mtscope::pipeline {
namespace {

flow::FlowRecord record(std::uint32_t src, std::uint32_t dst, net::IpProto proto,
                        std::uint64_t packets, std::uint64_t bytes) {
  flow::FlowRecord r;
  r.key.src = net::Ipv4Addr(src);
  r.key.dst = net::Ipv4Addr(dst);
  r.key.proto = proto;
  r.packets = packets;
  r.bytes = bytes;
  return r;
}

TEST(VantageStats, PerIpAccounting) {
  VantageStats stats;
  const std::vector<flow::FlowRecord> flows = {
      record(0x01010101, 0x0a000105, net::IpProto::kTcp, 2, 80),
      record(0x01010101, 0x0a000105, net::IpProto::kTcp, 1, 48),
      record(0x01010101, 0x0a000107, net::IpProto::kUdp, 3, 300),
  };
  stats.add_flows(flows, 100, 0);

  const BlockStatsStore::ConstRow obs = stats.find(net::Block24(0x0a0001));
  ASSERT_TRUE(obs);
  EXPECT_EQ(obs.rx_packets(), 6u);
  EXPECT_EQ(obs.rx_tcp_packets(), 3u);
  EXPECT_EQ(obs.rx_tcp_bytes(), 128u);
  EXPECT_EQ(obs.rx_est_packets(), 600u);
  ASSERT_EQ(obs.ips().size(), 2u);

  // Host .5 got both TCP flows.
  bool found5 = false;
  for (const IpRxStats& ip : obs.ips()) {
    if (ip.host == 5) {
      found5 = true;
      EXPECT_EQ(ip.tcp_packets, 3u);
      EXPECT_NEAR(ip.avg_tcp_size(), 128.0 / 3.0, 1e-9);
    }
    if (ip.host == 7) {
      EXPECT_EQ(ip.tcp_packets, 0u);
      EXPECT_EQ(ip.packets, 3u);
    }
  }
  EXPECT_TRUE(found5);

  // Source side: block of 1.1.1.1 marked as sender.
  const BlockStatsStore::ConstRow src = stats.find(net::Block24(0x010101));
  ASSERT_TRUE(src);
  EXPECT_EQ(src.tx_packets(), 6u);
  EXPECT_TRUE(src.host_sent(1));
  EXPECT_FALSE(src.host_sent(2));
}

TEST(VantageStats, SourceMaskFiltersForeignSources) {
  auto mask = std::make_shared<trie::Block24Set>();
  mask->insert(net::Block24(0x0a0001));  // only the destination block
  VantageStats stats(mask);
  const std::vector<flow::FlowRecord> flows = {
      record(0x01010101, 0x0a000105, net::IpProto::kTcp, 1, 40),
  };
  stats.add_flows(flows, 1, 0);
  EXPECT_TRUE(stats.find(net::Block24(0x0a0001)));
  EXPECT_FALSE(stats.find(net::Block24(0x010101)));  // masked out
}

TEST(VantageStats, DayCounting) {
  VantageStats stats;
  EXPECT_EQ(stats.day_count(), 0);  // empty covers no days (clamping is the caller's job)
  stats.add_flows({}, 1, 3);
  stats.add_flows({}, 1, 3);
  stats.add_flows({}, 1, 5);
  EXPECT_EQ(stats.day_count(), 2);
}

TEST(VantageStats, EmptyMergeTargetClaimsNoPhantomDay) {
  // The old "empty pretends one day" semantics made an empty merge target
  // double-count: merging a 1-day shard left day_count() at 1, as if the
  // target's imaginary day and the shard's real day were the same one.
  VantageStats shard;
  shard.add_flows({}, 1, 7);
  ASSERT_EQ(shard.day_count(), 1);

  VantageStats target;
  target.merge(shard);
  EXPECT_EQ(target.day_count(), 1);  // exactly the shard's day, nothing else

  VantageStats other_day;
  other_day.add_flows({}, 1, 8);
  target.merge(other_day);
  EXPECT_EQ(target.day_count(), 2);
}

TEST(VantageStats, NoteDayMatchesAddFlowsDayAccounting) {
  VantageStats via_note;
  via_note.note_day(2);
  via_note.note_day(2);
  via_note.note_day(9);
  VantageStats via_add;
  via_add.add_flows({}, 1, 2);
  via_add.add_flows({}, 1, 9);
  EXPECT_EQ(via_note.day_count(), via_add.day_count());
}

TEST(VantageStats, SplitIngestionMatchesAddFlows) {
  // note_day + add_flow_rx + add_flow_tx (the sharded collector's path)
  // must be exactly add_flows.
  const std::vector<flow::FlowRecord> flows = {
      record(0x01010101, 0x0a000105, net::IpProto::kTcp, 2, 80),
      record(0x0a000107, 0x02020202, net::IpProto::kUdp, 3, 300),
  };
  VantageStats whole;
  whole.add_flows(flows, 50, 4);

  VantageStats split;
  split.note_day(4);
  for (const flow::FlowRecord& r : flows) {
    split.add_flow_rx(r, 50);
    split.add_flow_tx(r);
  }

  EXPECT_EQ(split.day_count(), whole.day_count());
  EXPECT_EQ(split.flows_ingested(), whole.flows_ingested());
  EXPECT_EQ(split.blocks().size(), whole.blocks().size());
  for (const BlockStatsStore::ConstRow obs : whole.blocks()) {
    const BlockStatsStore::ConstRow other = split.find(obs.block());
    ASSERT_TRUE(other);
    EXPECT_EQ(other.rx_packets(), obs.rx_packets());
    EXPECT_EQ(other.rx_est_packets(), obs.rx_est_packets());
    EXPECT_EQ(other.tx_packets(), obs.tx_packets());
  }
}

TEST(VantageStats, MergeCombines) {
  VantageStats a;
  VantageStats b;
  const std::vector<flow::FlowRecord> fa = {
      record(0x01010101, 0x0a000105, net::IpProto::kTcp, 1, 40)};
  const std::vector<flow::FlowRecord> fb = {
      record(0x02020202, 0x0a000105, net::IpProto::kTcp, 2, 96),
      record(0x0a000109, 0x03030303, net::IpProto::kTcp, 1, 40)};  // block sends
  a.add_flows(fa, 10, 0);
  b.add_flows(fb, 10, 1);
  a.merge(b);

  EXPECT_EQ(a.day_count(), 2);
  EXPECT_EQ(a.flows_ingested(), 3u);
  const BlockStatsStore::ConstRow obs = a.find(net::Block24(0x0a0001));
  ASSERT_TRUE(obs);
  EXPECT_EQ(obs.rx_packets(), 3u);
  ASSERT_EQ(obs.ips().size(), 1u);  // same host .5 merged
  EXPECT_EQ(obs.ips()[0].tcp_packets, 3u);
  EXPECT_EQ(obs.tx_packets(), 1u);
  EXPECT_TRUE(obs.host_sent(9));
}

TEST(VantageStats, StoreIterationYieldsEveryBlockOnce) {
  VantageStats stats;
  const std::vector<flow::FlowRecord> flows = {
      record(0x01010101, 0x0a000105, net::IpProto::kTcp, 1, 40),
      record(0x01010101, 0x0b000205, net::IpProto::kTcp, 1, 40),
      record(0x01010101, 0x0c000305, net::IpProto::kTcp, 1, 40),
  };
  stats.add_flows(flows, 1, 0);

  std::set<std::uint32_t> seen;
  for (const BlockStatsStore::ConstRow row : stats.blocks()) {
    EXPECT_TRUE(seen.insert(row.block().index()).second);
  }
  // 3 destination blocks + the source block of 1.1.1.1.
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen.size(), stats.blocks().size());
  EXPECT_TRUE(seen.contains(0x010101u));
}

TEST(BlockObservationStruct, HostBitmap) {
  BlockObservation obs;
  EXPECT_FALSE(obs.host_sent(0));
  obs.mark_host_sent(0);
  obs.mark_host_sent(63);
  obs.mark_host_sent(64);
  obs.mark_host_sent(255);
  EXPECT_TRUE(obs.host_sent(0));
  EXPECT_TRUE(obs.host_sent(63));
  EXPECT_TRUE(obs.host_sent(64));
  EXPECT_TRUE(obs.host_sent(255));
  EXPECT_FALSE(obs.host_sent(128));
}

TEST(BlockObservationStruct, AvgTcpSize) {
  BlockObservation obs;
  EXPECT_DOUBLE_EQ(obs.avg_tcp_size(), 0.0);
  obs.rx_tcp_packets = 4;
  obs.rx_tcp_bytes = 180;
  EXPECT_DOUBLE_EQ(obs.avg_tcp_size(), 45.0);
}

TEST(BlockObservationStruct, RxIpKeepsHostsSorted) {
  // rx_ip() maintains the sorted-by-host invariant the linear merge relies
  // on, regardless of insertion order.
  BlockObservation obs;
  for (const std::uint8_t host : {200, 5, 120, 5, 0, 255}) {
    obs.rx_ip(host).packets += 1;
  }
  ASSERT_EQ(obs.rx_ips.size(), 5u);
  for (std::size_t i = 1; i < obs.rx_ips.size(); ++i) {
    EXPECT_LT(obs.rx_ips[i - 1].host, obs.rx_ips[i].host);
  }
  EXPECT_EQ(obs.rx_ip(5).packets, 2u);  // duplicate insert accumulated
}

TEST(BlockObservationStruct, MergeIsLinearUnionOverSortedRuns) {
  BlockObservation a;
  a.rx_ip(1).packets = 10;
  a.rx_ip(200).packets = 1;
  BlockObservation b;
  b.rx_ip(1).packets = 5;
  b.rx_ip(1).tcp_packets = 5;
  b.rx_ip(7).packets = 2;
  a.merge(b);

  ASSERT_EQ(a.rx_ips.size(), 3u);
  EXPECT_EQ(a.rx_ips[0].host, 1);
  EXPECT_EQ(a.rx_ips[0].packets, 15u);
  EXPECT_EQ(a.rx_ips[0].tcp_packets, 5u);
  EXPECT_EQ(a.rx_ips[1].host, 7);
  EXPECT_EQ(a.rx_ips[2].host, 200);
}

}  // namespace
}  // namespace mtscope::pipeline
