#include "pipeline/vantage_stats.hpp"

#include <gtest/gtest.h>

namespace mtscope::pipeline {
namespace {

flow::FlowRecord record(std::uint32_t src, std::uint32_t dst, net::IpProto proto,
                        std::uint64_t packets, std::uint64_t bytes) {
  flow::FlowRecord r;
  r.key.src = net::Ipv4Addr(src);
  r.key.dst = net::Ipv4Addr(dst);
  r.key.proto = proto;
  r.packets = packets;
  r.bytes = bytes;
  return r;
}

TEST(VantageStats, PerIpAccounting) {
  VantageStats stats;
  const std::vector<flow::FlowRecord> flows = {
      record(0x01010101, 0x0a000105, net::IpProto::kTcp, 2, 80),
      record(0x01010101, 0x0a000105, net::IpProto::kTcp, 1, 48),
      record(0x01010101, 0x0a000107, net::IpProto::kUdp, 3, 300),
  };
  stats.add_flows(flows, 100, 0);

  const BlockObservation* obs = stats.find(net::Block24(0x0a0001));
  ASSERT_NE(obs, nullptr);
  EXPECT_EQ(obs->rx_packets, 6u);
  EXPECT_EQ(obs->rx_tcp_packets, 3u);
  EXPECT_EQ(obs->rx_tcp_bytes, 128u);
  EXPECT_EQ(obs->rx_est_packets, 600u);
  ASSERT_EQ(obs->rx_ips.size(), 2u);

  // Host .5 got both TCP flows.
  bool found5 = false;
  for (const IpRxStats& ip : obs->rx_ips) {
    if (ip.host == 5) {
      found5 = true;
      EXPECT_EQ(ip.tcp_packets, 3u);
      EXPECT_NEAR(ip.avg_tcp_size(), 128.0 / 3.0, 1e-9);
    }
    if (ip.host == 7) {
      EXPECT_EQ(ip.tcp_packets, 0u);
      EXPECT_EQ(ip.packets, 3u);
    }
  }
  EXPECT_TRUE(found5);

  // Source side: block of 1.1.1.1 marked as sender.
  const BlockObservation* src = stats.find(net::Block24(0x010101));
  ASSERT_NE(src, nullptr);
  EXPECT_EQ(src->tx_packets, 6u);
  EXPECT_TRUE(src->host_sent(1));
  EXPECT_FALSE(src->host_sent(2));
}

TEST(VantageStats, SourceMaskFiltersForeignSources) {
  auto mask = std::make_shared<trie::Block24Set>();
  mask->insert(net::Block24(0x0a0001));  // only the destination block
  VantageStats stats(mask);
  const std::vector<flow::FlowRecord> flows = {
      record(0x01010101, 0x0a000105, net::IpProto::kTcp, 1, 40),
  };
  stats.add_flows(flows, 1, 0);
  EXPECT_NE(stats.find(net::Block24(0x0a0001)), nullptr);
  EXPECT_EQ(stats.find(net::Block24(0x010101)), nullptr);  // masked out
}

TEST(VantageStats, DayCounting) {
  VantageStats stats;
  EXPECT_EQ(stats.day_count(), 1);  // empty -> avoid division by zero
  stats.add_flows({}, 1, 3);
  stats.add_flows({}, 1, 3);
  stats.add_flows({}, 1, 5);
  EXPECT_EQ(stats.day_count(), 2);
}

TEST(VantageStats, MergeCombines) {
  VantageStats a;
  VantageStats b;
  const std::vector<flow::FlowRecord> fa = {
      record(0x01010101, 0x0a000105, net::IpProto::kTcp, 1, 40)};
  const std::vector<flow::FlowRecord> fb = {
      record(0x02020202, 0x0a000105, net::IpProto::kTcp, 2, 96),
      record(0x0a000109, 0x03030303, net::IpProto::kTcp, 1, 40)};  // block sends
  a.add_flows(fa, 10, 0);
  b.add_flows(fb, 10, 1);
  a.merge(b);

  EXPECT_EQ(a.day_count(), 2);
  EXPECT_EQ(a.flows_ingested(), 3u);
  const BlockObservation* obs = a.find(net::Block24(0x0a0001));
  ASSERT_NE(obs, nullptr);
  EXPECT_EQ(obs->rx_packets, 3u);
  EXPECT_EQ(obs->rx_ips.size(), 1u);  // same host .5 merged
  EXPECT_EQ(obs->rx_ips[0].tcp_packets, 3u);
  EXPECT_EQ(obs->tx_packets, 1u);
  EXPECT_TRUE(obs->host_sent(9));
}

TEST(BlockObservationStruct, HostBitmap) {
  BlockObservation obs;
  EXPECT_FALSE(obs.host_sent(0));
  obs.mark_host_sent(0);
  obs.mark_host_sent(63);
  obs.mark_host_sent(64);
  obs.mark_host_sent(255);
  EXPECT_TRUE(obs.host_sent(0));
  EXPECT_TRUE(obs.host_sent(63));
  EXPECT_TRUE(obs.host_sent(64));
  EXPECT_TRUE(obs.host_sent(255));
  EXPECT_FALSE(obs.host_sent(128));
}

TEST(BlockObservationStruct, AvgTcpSize) {
  BlockObservation obs;
  EXPECT_DOUBLE_EQ(obs.avg_tcp_size(), 0.0);
  obs.rx_tcp_packets = 4;
  obs.rx_tcp_bytes = 180;
  EXPECT_DOUBLE_EQ(obs.avg_tcp_size(), 45.0);
}

}  // namespace
}  // namespace mtscope::pipeline
