#include "pipeline/hitlists.hpp"

#include <gtest/gtest.h>

namespace mtscope::pipeline {
namespace {

class HitListTest : public ::testing::Test {
 protected:
  static const sim::AddressPlan& plan() {
    static const sim::AddressPlan instance{sim::SimConfig::tiny(13)};
    return instance;
  }
};

TEST_F(HitListTest, CoverageApproximatelyHonoured) {
  HitListSpec spec{"test", 0.8, false, 0.0};
  const HitList list = HitList::generate(plan(), spec, 1);
  std::size_t active_listed = 0;
  plan().active_blocks().for_each([&](net::Block24 block) {
    if (list.contains(block)) ++active_listed;
  });
  const double rate = static_cast<double>(active_listed) /
                      static_cast<double>(plan().active_blocks().size());
  // Quiet/asym blocks get reduced coverage, so the overall rate sits a bit
  // below the nominal 0.8.
  EXPECT_GT(rate, 0.70);
  EXPECT_LT(rate, 0.82);
}

TEST_F(HitListTest, StaleEntriesTouchDarkSpace) {
  HitListSpec spec{"stale", 0.0, false, 0.01};
  const HitList list = HitList::generate(plan(), spec, 2);
  std::size_t dark_listed = 0;
  plan().dark_blocks().for_each([&](net::Block24 block) {
    if (list.contains(block)) ++dark_listed;
  });
  const double rate =
      static_cast<double>(dark_listed) / static_cast<double>(plan().dark_blocks().size());
  EXPECT_NEAR(rate, 0.01, 0.004);
}

TEST_F(HitListTest, IspOnlyRestrictsTypes) {
  HitListSpec spec{"ndt", 1.0, true, 0.0};
  const HitList list = HitList::generate(plan(), spec, 3);
  EXPECT_GT(list.blocks().size(), 0u);
  list.blocks().for_each([&](net::Block24 block) {
    const auto as_index = plan().as_of(block);
    ASSERT_TRUE(as_index);
    EXPECT_EQ(plan().as_at(*as_index).type, geo::NetType::kIsp);
  });
}

TEST_F(HitListTest, DeterministicPerSeed) {
  HitListSpec spec{"censys", 0.5, false, 0.001};
  const HitList a = HitList::generate(plan(), spec, 7);
  const HitList b = HitList::generate(plan(), spec, 7);
  EXPECT_EQ(a.blocks(), b.blocks());
  const HitList c = HitList::generate(plan(), spec, 8);
  EXPECT_NE(c.blocks().size(), 0u);
  EXPECT_FALSE(a.blocks() == c.blocks());
}

TEST_F(HitListTest, UnionCombines) {
  const HitList a("a", [] {
    trie::Block24Set s;
    s.insert(net::Block24(1));
    return s;
  }());
  const HitList b("b", [] {
    trie::Block24Set s;
    s.insert(net::Block24(2));
    return s;
  }());
  const auto u = hitlist_union({a, b});
  EXPECT_EQ(u.size(), 2u);
}

TEST_F(HitListTest, CorrectionRemovesListedBlocks) {
  trie::Block24Set inferred;
  inferred.insert(net::Block24(1));
  inferred.insert(net::Block24(2));
  inferred.insert(net::Block24(3));
  trie::Block24Set active;
  active.insert(net::Block24(2));
  active.insert(net::Block24(9));  // not inferred: no effect

  std::uint64_t removed = 0;
  const auto scrubbed = apply_hitlist_correction(inferred, active, &removed);
  EXPECT_EQ(removed, 1u);
  EXPECT_EQ(scrubbed.size(), 2u);
  EXPECT_FALSE(scrubbed.contains(net::Block24(2)));
  EXPECT_TRUE(scrubbed.contains(net::Block24(1)));
}

TEST(HitListSpecs, DefaultsMatchPaperDatasets) {
  const auto specs = default_hitlist_specs();
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].name, "censys");
  EXPECT_EQ(specs[1].name, "ndt");
  EXPECT_TRUE(specs[1].isp_only);
  EXPECT_EQ(specs[2].name, "isi");
  EXPECT_GT(specs[0].coverage, specs[1].coverage);
}

}  // namespace
}  // namespace mtscope::pipeline
