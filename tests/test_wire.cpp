// The MTBIN frame codec (serve/wire.hpp): byte-exact encodings, round
// trips for every request/response kind, one test per typed decode error,
// and the seeded single-byte corruption sweeps — the same 512-flip idiom
// test_snapshot uses for the persistence codec — proving a corrupted
// frame always surfaces as a typed wire.* error (almost always
// wire.bad_crc, since the seal is checked before any field is read) and
// never decodes as a different valid query.
#include "serve/wire.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "net/ipv4.hpp"
#include "net/prefix.hpp"
#include "serve/snapshot.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace mtscope {
namespace {

using serve::wire::InvalidReason;
using serve::wire::Request;
using serve::wire::Response;
using serve::wire::Status;
using serve::wire::Verb;

std::vector<std::uint8_t> encode(const Request& request) {
  std::string out;
  serve::wire::append_request(out, request);
  return {out.begin(), out.end()};
}

std::vector<std::uint8_t> encode(const Response& response) {
  std::string out;
  serve::wire::append_response(out, response);
  return {out.begin(), out.end()};
}

// ---------------------------------------------------------------------------
// Byte-exact layout: the wire format is a contract, not an implementation
// detail — pin offsets and endianness so a refactor cannot silently move
// a field.

TEST(WireLayout, RequestFrameBytes) {
  Request request;
  request.verb = Verb::kCountIn;
  request.plen = 24;
  request.addr = net::Ipv4Addr::from_octets(203, 0, 113, 0);
  const auto bytes = encode(request);
  ASSERT_EQ(bytes.size(), serve::wire::kRequestSize);
  EXPECT_EQ(bytes[0], 2u);   // verb
  EXPECT_EQ(bytes[1], 24u);  // plen
  EXPECT_EQ(bytes[2], 0u);   // reserved
  EXPECT_EQ(bytes[3], 0u);
  EXPECT_EQ(util::le_get_u32(bytes, 4), request.addr.value());
  EXPECT_EQ(util::le_get_u32(bytes, 8), util::crc32(std::span(bytes).first(8)));
}

TEST(WireLayout, ResponseFrameBytes) {
  Response response;
  response.status = Status::kVerdict;
  response.cls = 0;  // dark
  response.has_prefix = true;
  response.has_origin = true;
  response.plen = 8;
  response.addr = net::Ipv4Addr::from_octets(10, 0, 0, 7);
  response.prefix_base = net::Ipv4Addr::from_octets(10, 0, 0, 0).value();
  response.origin_asn = 65001;
  const auto bytes = encode(response);
  ASSERT_EQ(bytes.size(), serve::wire::kResponseSize);
  EXPECT_EQ(bytes[0], 0u);  // status verdict
  EXPECT_EQ(bytes[1], 0u);  // class dark
  EXPECT_EQ(bytes[2], 0x03u);  // has_prefix | has_origin
  EXPECT_EQ(bytes[3], 8u);
  EXPECT_EQ(util::le_get_u32(bytes, 4), response.addr.value());
  EXPECT_EQ(util::le_get_u32(bytes, 8), response.prefix_base);
  EXPECT_EQ(util::le_get_u32(bytes, 12), 65001u);
  EXPECT_EQ(util::le_get_u32(bytes, 16), util::crc32(std::span(bytes).first(16)));
}

// ---------------------------------------------------------------------------
// Round trips.

TEST(WireRoundTrip, LookupRequest) {
  Request request;
  request.verb = Verb::kLookup;
  request.addr = net::Ipv4Addr::from_octets(192, 168, 5, 44);
  const auto bytes = encode(request);
  const auto decoded = serve::wire::decode_request(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
  EXPECT_EQ(decoded.value(), request);
}

TEST(WireRoundTrip, CountInRequestEveryLength) {
  for (std::uint8_t plen = 0; plen <= 24; ++plen) {
    Request request;
    request.verb = Verb::kCountIn;
    request.plen = plen;
    request.addr = net::Ipv4Addr(0xc0000200u);
    const auto decoded = serve::wire::decode_request(encode(request));
    ASSERT_TRUE(decoded.ok()) << "plen " << int(plen);
    EXPECT_EQ(decoded.value(), request);
  }
}

TEST(WireRoundTrip, VerdictResponseAllClasses) {
  for (std::uint8_t cls = 0; cls <= serve::wire::kClassNone; ++cls) {
    Response response;
    response.status = Status::kVerdict;
    response.cls = cls;
    response.addr = net::Ipv4Addr::from_octets(10, 1, 2, 3);
    if (cls < serve::wire::kClassNone) {
      response.has_prefix = true;
      response.has_origin = true;
      response.plen = 16;
      response.prefix_base = net::Ipv4Addr::from_octets(10, 1, 0, 0).value();
      response.origin_asn = 64512 + cls;
    }
    const auto decoded = serve::wire::decode_response(encode(response));
    ASSERT_TRUE(decoded.ok()) << "class " << int(cls);
    EXPECT_EQ(decoded.value(), response);
  }
}

TEST(WireRoundTrip, InvalidAndCountResponses) {
  const auto invalid = serve::wire::make_invalid_response(net::Ipv4Addr(0xdeadbeefu),
                                                         InvalidReason::kBadPlen);
  auto decoded = serve::wire::decode_response(encode(invalid));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), invalid);
  EXPECT_EQ(decoded.value().cls, static_cast<std::uint8_t>(InvalidReason::kBadPlen));

  const auto count = serve::wire::make_count_response(net::Ipv4Addr::from_octets(10, 0, 0, 0),
                                                      8, 0x1234'5678'9abcull);
  decoded = serve::wire::decode_response(encode(count));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), count);
  EXPECT_EQ(decoded.value().count, 0x1234'5678'9abcull);
}

// ---------------------------------------------------------------------------
// make_verdict_response mirrors the line protocol's format_verdict.

TEST(WireVerdict, NoneLookupMapsToClassNone) {
  const auto response = serve::wire::make_verdict_response(net::Ipv4Addr(1), std::nullopt);
  EXPECT_EQ(response.status, Status::kVerdict);
  EXPECT_EQ(response.cls, serve::wire::kClassNone);
  EXPECT_FALSE(response.has_prefix);
  EXPECT_FALSE(response.has_origin);
}

TEST(WireVerdict, FullVerdictCarriesPrefixAndOrigin) {
  serve::TelescopeIndex::Verdict verdict;
  verdict.block = net::Block24::containing(net::Ipv4Addr::from_octets(10, 0, 1, 0));
  verdict.cls = serve::BlockClass::kGray;
  verdict.prefix = net::Prefix(net::Ipv4Addr::from_octets(10, 0, 0, 0), 8);
  verdict.origin = net::AsNumber(65001);
  const auto addr = net::Ipv4Addr::from_octets(10, 0, 1, 9);
  const auto response = serve::wire::make_verdict_response(addr, verdict);
  EXPECT_EQ(response.cls, static_cast<std::uint8_t>(serve::BlockClass::kGray));
  EXPECT_TRUE(response.has_prefix);
  EXPECT_TRUE(response.has_origin);
  EXPECT_EQ(response.plen, 8u);
  EXPECT_EQ(response.prefix_base, net::Ipv4Addr::from_octets(10, 0, 0, 0).value());
  EXPECT_EQ(response.origin_asn, 65001u);
  EXPECT_EQ(response.addr, addr);
}

// ---------------------------------------------------------------------------
// One test per typed decode error.

TEST(WireErrors, TruncatedFrames) {
  Request request;
  request.addr = net::Ipv4Addr(42);
  auto bytes = encode(request);
  bytes.pop_back();
  EXPECT_EQ(serve::wire::decode_request(bytes).error().code, "wire.truncated");
  EXPECT_EQ(serve::wire::decode_request({}).error().code, "wire.truncated");
  EXPECT_EQ(serve::wire::decode_response(bytes).error().code, "wire.truncated");
}

TEST(WireErrors, RequestBadCrc) {
  auto bytes = encode(Request{});
  bytes[8] ^= 0x01;
  EXPECT_EQ(serve::wire::decode_request(bytes).error().code, "wire.bad_crc");
}

// Field-level errors need a re-sealed CRC, otherwise the seal check (which
// runs first) would mask them.
std::vector<std::uint8_t> corrupt_and_reseal_request(std::size_t at, std::uint8_t value) {
  Request request;
  request.verb = Verb::kCountIn;
  request.plen = 8;
  request.addr = net::Ipv4Addr(0x0a000000u);
  auto bytes = encode(request);
  bytes[at] = value;
  util::le_patch_u32(bytes, 8, util::crc32(std::span(bytes).first(8)));
  return bytes;
}

TEST(WireErrors, RequestBadVerb) {
  EXPECT_EQ(serve::wire::decode_request(corrupt_and_reseal_request(0, 0)).error().code,
            "wire.bad_verb");
  EXPECT_EQ(serve::wire::decode_request(corrupt_and_reseal_request(0, 3)).error().code,
            "wire.bad_verb");
}

TEST(WireErrors, RequestBadReserved) {
  EXPECT_EQ(serve::wire::decode_request(corrupt_and_reseal_request(2, 1)).error().code,
            "wire.bad_reserved");
  EXPECT_EQ(serve::wire::decode_request(corrupt_and_reseal_request(3, 0x80)).error().code,
            "wire.bad_reserved");
}

TEST(WireErrors, RequestBadPlen) {
  // count-in past /24 has nothing to count; lookup must carry plen 0.
  EXPECT_EQ(serve::wire::decode_request(corrupt_and_reseal_request(1, 25)).error().code,
            "wire.bad_plen");
  Request lookup;
  lookup.verb = Verb::kLookup;
  auto bytes = encode(lookup);
  bytes[1] = 1;
  util::le_patch_u32(bytes, 8, util::crc32(std::span(bytes).first(8)));
  EXPECT_EQ(serve::wire::decode_request(bytes).error().code, "wire.bad_plen");
}

std::vector<std::uint8_t> corrupt_and_reseal_response(std::size_t at, std::uint8_t value) {
  auto bytes = encode(serve::wire::make_count_response(net::Ipv4Addr(0x0a000000u), 8, 7));
  bytes[at] = value;
  util::le_patch_u32(bytes, 16, util::crc32(std::span(bytes).first(16)));
  return bytes;
}

TEST(WireErrors, ResponseBadCrcStatusFlagsClassPlen) {
  auto crc = encode(Response{});
  crc[16] ^= 0x40;
  EXPECT_EQ(serve::wire::decode_response(crc).error().code, "wire.bad_crc");

  EXPECT_EQ(serve::wire::decode_response(corrupt_and_reseal_response(0, 3)).error().code,
            "wire.bad_status");
  EXPECT_EQ(serve::wire::decode_response(corrupt_and_reseal_response(2, 0x04)).error().code,
            "wire.bad_flags");
  EXPECT_EQ(serve::wire::decode_response(corrupt_and_reseal_response(3, 33)).error().code,
            "wire.bad_plen");

  Response verdict;  // defaults: status verdict, cls none
  auto bytes = encode(verdict);
  bytes[1] = serve::wire::kClassNone + 1;
  util::le_patch_u32(bytes, 16, util::crc32(std::span(bytes).first(16)));
  EXPECT_EQ(serve::wire::decode_response(bytes).error().code, "wire.bad_class");
}

TEST(WireErrors, InvalidReasonMapping) {
  EXPECT_EQ(serve::wire::invalid_reason("wire.bad_verb"), InvalidReason::kBadVerb);
  EXPECT_EQ(serve::wire::invalid_reason("wire.bad_reserved"), InvalidReason::kBadReserved);
  EXPECT_EQ(serve::wire::invalid_reason("wire.bad_plen"), InvalidReason::kBadPlen);
  EXPECT_EQ(serve::wire::invalid_reason("wire.bad_crc"), InvalidReason::kBadCrc);
  EXPECT_EQ(serve::wire::invalid_reason("wire.truncated"), InvalidReason::kBadCrc);
}

// ---------------------------------------------------------------------------
// Seeded corruption sweeps, mirroring test_snapshot's 512-flip idiom: a
// single flipped byte anywhere in a frame must yield a typed wire.* error
// — never a successful decode of a different query, never a crash.

TEST(WireCorruption, RequestSingleByteFlipSweep) {
  Request request;
  request.verb = Verb::kCountIn;
  request.plen = 16;
  request.addr = net::Ipv4Addr::from_octets(198, 51, 100, 0);
  const auto clean = encode(request);

  util::Rng rng(0xc0ffee);
  for (int i = 0; i < 512; ++i) {
    auto bytes = clean;
    const auto at = static_cast<std::size_t>(rng.uniform(bytes.size()));
    const auto flip = static_cast<std::uint8_t>(1 + rng.uniform(255));
    bytes[at] ^= flip;
    const auto decoded = serve::wire::decode_request(bytes);
    ASSERT_FALSE(decoded.ok()) << "flip 0x" << std::hex << int(flip) << " at " << std::dec << at
                               << " decoded as a valid frame";
    EXPECT_TRUE(decoded.error().code.starts_with("wire."))
        << at << ": " << decoded.error().code;
  }
}

TEST(WireCorruption, ResponseSingleByteFlipSweep) {
  Response response;
  response.status = Status::kVerdict;
  response.cls = 1;  // unclean
  response.has_prefix = true;
  response.has_origin = true;
  response.plen = 12;
  response.addr = net::Ipv4Addr::from_octets(172, 16, 9, 1);
  response.prefix_base = net::Ipv4Addr::from_octets(172, 16, 0, 0).value();
  response.origin_asn = 65002;
  const auto clean = encode(response);

  util::Rng rng(0xc0ffee);
  for (int i = 0; i < 512; ++i) {
    auto bytes = clean;
    const auto at = static_cast<std::size_t>(rng.uniform(bytes.size()));
    const auto flip = static_cast<std::uint8_t>(1 + rng.uniform(255));
    bytes[at] ^= flip;
    const auto decoded = serve::wire::decode_response(bytes);
    ASSERT_FALSE(decoded.ok()) << "flip 0x" << std::hex << int(flip) << " at " << std::dec << at
                               << " decoded as a valid frame";
    EXPECT_TRUE(decoded.error().code.starts_with("wire."))
        << at << ": " << decoded.error().code;
  }
}

}  // namespace
}  // namespace mtscope
