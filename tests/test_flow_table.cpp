#include "flow/flow_table.hpp"

#include <gtest/gtest.h>

namespace mtscope::flow {
namespace {

PacketMeta packet(std::uint64_t ts, std::uint32_t src, std::uint32_t dst, std::uint16_t sport,
                  std::uint16_t dport, std::uint16_t len = 40,
                  std::uint8_t flags = net::TcpFlags::kSyn) {
  PacketMeta p;
  p.timestamp_us = ts;
  p.src = net::Ipv4Addr(src);
  p.dst = net::Ipv4Addr(dst);
  p.src_port = sport;
  p.dst_port = dport;
  p.ip_length = len;
  p.tcp_flags = flags;
  return p;
}

TEST(FlowTable, AggregatesSameTuple) {
  FlowTable table;
  table.add(packet(1000, 1, 2, 10, 80, 40, net::TcpFlags::kSyn));
  table.add(packet(2000, 1, 2, 10, 80, 60, net::TcpFlags::kAck));
  table.flush();
  const auto flows = table.drain_exported();
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].packets, 2u);
  EXPECT_EQ(flows[0].bytes, 100u);
  EXPECT_EQ(flows[0].first_us, 1000u);
  EXPECT_EQ(flows[0].last_us, 2000u);
  EXPECT_EQ(flows[0].tcp_flags_or, net::TcpFlags::kSyn | net::TcpFlags::kAck);
}

TEST(FlowTable, DistinctTuplesSeparate) {
  FlowTable table;
  table.add(packet(1, 1, 2, 10, 80));
  table.add(packet(2, 1, 2, 10, 443));   // different dst port
  table.add(packet(3, 1, 3, 10, 80));    // different dst ip
  table.add(packet(4, 1, 2, 11, 80));    // different src port
  table.flush();
  EXPECT_EQ(table.drain_exported().size(), 4u);
}

TEST(FlowTable, IdleTimeoutExports) {
  FlowTableConfig config;
  config.idle_timeout_us = 1'000'000;
  FlowTable table(config);
  table.add(packet(0, 1, 2, 10, 80));
  // Nothing exported yet.
  EXPECT_TRUE(table.drain_exported().empty());
  // A much later packet triggers the expiry scan.
  table.add(packet(5'000'000, 9, 9, 1, 1));
  const auto flows = table.drain_exported();
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].key.src, net::Ipv4Addr(1));
  EXPECT_EQ(table.active_flows(), 1u);  // the new flow is still live
}

TEST(FlowTable, ActiveTimeoutSplitsLongFlow) {
  FlowTableConfig config;
  config.active_timeout_us = 10'000'000;
  config.idle_timeout_us = 100'000'000;  // effectively off
  FlowTable table(config);
  table.add(packet(0, 1, 2, 10, 80));
  table.add(packet(5'000'000, 1, 2, 10, 80));
  table.add(packet(15'000'000, 1, 2, 10, 80));  // crosses the active timeout
  table.flush();
  const auto flows = table.drain_exported();
  ASSERT_EQ(flows.size(), 2u);
  EXPECT_EQ(flows[0].packets + flows[1].packets, 3u);
}

TEST(FlowTable, MaxEntriesEvicts) {
  FlowTableConfig config;
  config.max_entries = 4;
  FlowTable table(config);
  for (std::uint32_t i = 0; i < 10; ++i) {
    table.add(packet(i, i + 1, 2, 10, 80));
  }
  EXPECT_LE(table.active_flows(), 4u);
  table.flush();
  // Every packet is accounted for exactly once across all exports.
  std::uint64_t total = 0;
  for (const auto& flow : table.drain_exported()) total += flow.packets;
  EXPECT_EQ(total, 10u);
  EXPECT_EQ(table.packets_seen(), 10u);
}

TEST(FlowTable, SamplingRateRecorded) {
  FlowTableConfig config;
  config.sampling_rate = 1000;
  FlowTable table(config);
  table.add(packet(0, 1, 2, 10, 80));
  table.flush();
  const auto flows = table.drain_exported();
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].sampling_rate, 1000u);
  EXPECT_EQ(flows[0].estimated_packets(), 1000u);
}

TEST(FlowTable, AveragePacketSize) {
  FlowTable table;
  table.add(packet(0, 1, 2, 10, 80, 40));
  table.add(packet(1, 1, 2, 10, 80, 48));
  table.flush();
  const auto flows = table.drain_exported();
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_DOUBLE_EQ(flows[0].average_packet_size(), 44.0);
}

TEST(FlowTable, RejectsBadConfig) {
  FlowTableConfig zero_rate;
  zero_rate.sampling_rate = 0;
  EXPECT_THROW(FlowTable{zero_rate}, std::invalid_argument);
  FlowTableConfig zero_entries;
  zero_entries.max_entries = 0;
  EXPECT_THROW(FlowTable{zero_entries}, std::invalid_argument);
}

TEST(FlowTable, FlushTwiceIsSafe) {
  FlowTable table;
  table.add(packet(0, 1, 2, 10, 80));
  table.flush();
  table.flush();
  EXPECT_EQ(table.drain_exported().size(), 1u);
  EXPECT_TRUE(table.drain_exported().empty());
}

}  // namespace
}  // namespace mtscope::flow
