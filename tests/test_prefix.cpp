#include "net/prefix.hpp"

#include <gtest/gtest.h>

namespace mtscope::net {
namespace {

TEST(Prefix, ConstructValid) {
  const Prefix p(Ipv4Addr::from_octets(10, 0, 0, 0), 8);
  EXPECT_EQ(p.length(), 8);
  EXPECT_EQ(p.to_string(), "10.0.0.0/8");
  EXPECT_EQ(p.address_count(), 1ull << 24);
  EXPECT_EQ(p.block24_count(), 1ull << 16);
}

TEST(Prefix, RejectsHostBits) {
  EXPECT_THROW(Prefix(Ipv4Addr::from_octets(10, 0, 0, 1), 8), std::invalid_argument);
}

TEST(Prefix, RejectsBadLength) {
  EXPECT_THROW(Prefix(Ipv4Addr(0), 33), std::invalid_argument);
  EXPECT_THROW((void)Prefix::canonical(Ipv4Addr(0), -1), std::invalid_argument);
}

TEST(Prefix, CanonicalMasks) {
  const Prefix p = Prefix::canonical(Ipv4Addr::from_octets(10, 1, 2, 3), 16);
  EXPECT_EQ(p.to_string(), "10.1.0.0/16");
}

TEST(Prefix, DefaultIsWholeSpace) {
  const Prefix p;
  EXPECT_EQ(p.length(), 0);
  EXPECT_EQ(p.address_count(), 1ull << 32);
  EXPECT_TRUE(p.contains(Ipv4Addr(0xffffffffu)));
}

struct PrefixParseCase {
  const char* text;
  bool valid;
};

class PrefixParse : public ::testing::TestWithParam<PrefixParseCase> {};

TEST_P(PrefixParse, Matches) {
  EXPECT_EQ(Prefix::parse(GetParam().text).has_value(), GetParam().valid) << GetParam().text;
}

INSTANTIATE_TEST_SUITE_P(Cases, PrefixParse,
                         ::testing::Values(PrefixParseCase{"10.0.0.0/8", true},
                                           PrefixParseCase{"0.0.0.0/0", true},
                                           PrefixParseCase{"192.0.2.1/32", true},
                                           PrefixParseCase{"10.0.0.1/8", false},  // host bits
                                           PrefixParseCase{"10.0.0.0/33", false},
                                           PrefixParseCase{"10.0.0.0", false},
                                           PrefixParseCase{"10.0.0.0/-1", false},
                                           PrefixParseCase{"abc/8", false},
                                           PrefixParseCase{"10.0.0.0/8x", false}));

class PrefixRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(PrefixRoundTrip, ParseToStringIdentity) {
  const int len = GetParam();
  const Prefix p = Prefix::canonical(Ipv4Addr::from_octets(172, 16 + len, 7, 200), len);
  const auto reparsed = Prefix::parse(p.to_string());
  ASSERT_TRUE(reparsed);
  EXPECT_EQ(*reparsed, p);
}

INSTANTIATE_TEST_SUITE_P(AllLengths, PrefixRoundTrip, ::testing::Range(0, 33));

TEST(Prefix, Containment) {
  const Prefix p8 = *Prefix::parse("10.0.0.0/8");
  const Prefix p16 = *Prefix::parse("10.5.0.0/16");
  const Prefix other = *Prefix::parse("11.0.0.0/8");
  EXPECT_TRUE(p8.contains(p16));
  EXPECT_FALSE(p16.contains(p8));
  EXPECT_TRUE(p8.contains(p8));
  EXPECT_FALSE(p8.contains(other));
  EXPECT_TRUE(p8.overlaps(p16));
  EXPECT_TRUE(p16.overlaps(p8));
  EXPECT_FALSE(p8.overlaps(other));
}

TEST(Prefix, ContainsBlock24) {
  const Prefix p = *Prefix::parse("10.0.0.0/8");
  EXPECT_TRUE(p.contains(Block24::containing(Ipv4Addr::from_octets(10, 200, 3, 4))));
  EXPECT_FALSE(p.contains(Block24::containing(Ipv4Addr::from_octets(11, 0, 0, 0))));
  // A /25 cannot contain any /24.
  const Prefix p25 = *Prefix::parse("10.0.0.0/25");
  EXPECT_FALSE(p25.contains(Block24::containing(Ipv4Addr::from_octets(10, 0, 0, 0))));
}

TEST(Prefix, ParentChildren) {
  const Prefix p = *Prefix::parse("10.0.0.0/9");
  const auto parent = p.parent();
  ASSERT_TRUE(parent);
  EXPECT_EQ(parent->to_string(), "10.0.0.0/8");
  EXPECT_FALSE(Prefix().parent());

  const auto [low, high] = parent->children();
  EXPECT_EQ(low, p);
  EXPECT_EQ(high.to_string(), "10.128.0.0/9");
  EXPECT_THROW((void)(*Prefix::parse("1.2.3.4/32")).children(), std::logic_error);
}

TEST(Prefix, ChildrenPartitionParent) {
  const Prefix p = *Prefix::parse("192.168.0.0/16");
  const auto [low, high] = p.children();
  EXPECT_EQ(low.address_count() + high.address_count(), p.address_count());
  EXPECT_TRUE(p.contains(low));
  EXPECT_TRUE(p.contains(high));
  EXPECT_FALSE(low.overlaps(high));
}

TEST(Prefix, Blocks24Enumeration) {
  const Prefix p = *Prefix::parse("198.51.100.0/23");
  const auto blocks = p.blocks24();
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_EQ(blocks[0].to_string(), "198.51.100.0/24");
  EXPECT_EQ(blocks[1].to_string(), "198.51.101.0/24");
  EXPECT_THROW((void)(*Prefix::parse("1.2.3.0/25")).blocks24(), std::logic_error);
}

TEST(Prefix, FromBlock24) {
  const Block24 b = Block24::containing(Ipv4Addr::from_octets(203, 0, 113, 9));
  EXPECT_EQ(Prefix::from_block24(b).to_string(), "203.0.113.0/24");
}

TEST(Prefix, BitAccess) {
  const Prefix p = *Prefix::parse("128.0.0.0/1");
  EXPECT_TRUE(p.bit(0));
  const Prefix q = *Prefix::parse("64.0.0.0/2");
  EXPECT_FALSE(q.bit(0));
  EXPECT_TRUE(q.bit(1));
}

TEST(Prefix, MaskFor) {
  EXPECT_EQ(Prefix::mask_for(0), 0u);
  EXPECT_EQ(Prefix::mask_for(8), 0xff000000u);
  EXPECT_EQ(Prefix::mask_for(32), 0xffffffffu);
}

}  // namespace
}  // namespace mtscope::net
