#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace mtscope::util {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ForkIsIndependentOfParentConsumption) {
  Rng parent(99);
  Rng fork_before = parent.fork(7);
  const std::uint64_t expected = Rng(99).fork(7).next();
  EXPECT_EQ(fork_before.next(), expected);
}

TEST(Rng, ForksWithDifferentIdsDiffer) {
  Rng parent(99);
  EXPECT_NE(parent.fork(1).next(), parent.fork(2).next());
}

TEST(Rng, UniformZeroBoundThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform(0), std::invalid_argument);
}

class RngUniformBounds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngUniformBounds, StaysInRange) {
  Rng rng(GetParam() * 7919 + 13);
  const std::uint64_t bound = GetParam();
  for (int i = 0; i < 2000; ++i) EXPECT_LT(rng.uniform(bound), bound);
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngUniformBounds,
                         ::testing::Values(1, 2, 3, 7, 100, 1'000'000, 1ull << 40));

TEST(Rng, UniformIsRoughlyUniform) {
  Rng rng(5);
  std::vector<int> buckets(10, 0);
  const int n = 100'000;
  for (int i = 0; i < n; ++i) ++buckets[rng.uniform(10)];
  for (int count : buckets) {
    EXPECT_NEAR(count, n / 10, n / 100);  // within 10% relative
  }
}

TEST(Rng, UniformInInclusive) {
  Rng rng(6);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const std::uint64_t v = rng.uniform_in(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01Range) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

class RngPoissonMean : public ::testing::TestWithParam<double> {};

TEST_P(RngPoissonMean, MatchesMeanAndVariance) {
  const double mean = GetParam();
  Rng rng(static_cast<std::uint64_t>(mean * 1000) + 3);
  const int n = 20'000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = static_cast<double>(rng.poisson(mean));
    sum += x;
    sum_sq += x * x;
  }
  const double sample_mean = sum / n;
  const double sample_var = sum_sq / n - sample_mean * sample_mean;
  EXPECT_NEAR(sample_mean, mean, std::max(0.05, mean * 0.05));
  EXPECT_NEAR(sample_var, mean, std::max(0.2, mean * 0.15));  // Poisson: var == mean
}

INSTANTIATE_TEST_SUITE_P(Means, RngPoissonMean,
                         ::testing::Values(0.1, 0.5, 1.0, 5.0, 29.0, 50.0, 1000.0));

TEST(Rng, PoissonZeroMean) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, PoissonNegativeThrows) {
  Rng rng(9);
  EXPECT_THROW(rng.poisson(-1.0), std::invalid_argument);
}

TEST(Rng, ExponentialMean) {
  Rng rng(10);
  double sum = 0.0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Rng, ParetoAboveScale) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, ZipfFavoursLowRanks) {
  Rng rng(12);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50'000; ++i) ++counts[rng.zipf(10, 1.0)];
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[4], counts[9]);
}

TEST(Rng, ZipfZeroSkewIsUniform) {
  Rng rng(13);
  std::vector<int> counts(5, 0);
  const int n = 50'000;
  for (int i = 0; i < n; ++i) ++counts[rng.zipf(5, 0.0)];
  for (int c : counts) EXPECT_NEAR(c, n / 5, n / 40);
}

TEST(Rng, WeightedPickRespectsWeights) {
  Rng rng(14);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40'000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_pick(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(Rng, WeightedPickRejectsBadInput) {
  Rng rng(15);
  const std::vector<double> zeros = {0.0, 0.0};
  EXPECT_THROW(rng.weighted_pick(zeros), std::invalid_argument);
  const std::vector<double> negative = {1.0, -0.5};
  EXPECT_THROW(rng.weighted_pick(negative), std::invalid_argument);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(16);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(SplitMix, MixIsDeterministicAndSpread) {
  EXPECT_EQ(mix64(1, 2), mix64(1, 2));
  EXPECT_NE(mix64(1, 2), mix64(2, 1));
  EXPECT_NE(mix64(0, 0), 0u);
}

}  // namespace
}  // namespace mtscope::util
