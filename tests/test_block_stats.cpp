#include "telemetry/block_stats.hpp"

#include <gtest/gtest.h>

namespace mtscope::telemetry {
namespace {

flow::FlowRecord record(std::uint32_t src, std::uint32_t dst, net::IpProto proto,
                        std::uint64_t packets, std::uint64_t bytes) {
  flow::FlowRecord r;
  r.key.src = net::Ipv4Addr(src);
  r.key.dst = net::Ipv4Addr(dst);
  r.key.proto = proto;
  r.packets = packets;
  r.bytes = bytes;
  return r;
}

TEST(BlockStatsMap, AccountsBothDirections) {
  BlockStatsMap map;
  // 10.0.0.0/24 -> 10.0.1.0/24, TCP, 3 packets of 40 bytes.
  map.add_flow(record(0x0a000001, 0x0a000105, net::IpProto::kTcp, 3, 120));

  const BlockCounters* dst = map.find(net::Block24(0x0a0001));
  ASSERT_NE(dst, nullptr);
  EXPECT_EQ(dst->rx_packets, 3u);
  EXPECT_EQ(dst->rx_tcp_packets, 3u);
  EXPECT_DOUBLE_EQ(dst->avg_tcp_packet_size(), 40.0);
  EXPECT_EQ(dst->tx_packets, 0u);

  const BlockCounters* src = map.find(net::Block24(0x0a0000));
  ASSERT_NE(src, nullptr);
  EXPECT_EQ(src->tx_packets, 3u);
  EXPECT_EQ(src->rx_packets, 0u);

  EXPECT_EQ(map.flows_seen(), 1u);
  EXPECT_EQ(map.packets_seen(), 3u);
}

TEST(BlockStatsMap, UdpCountedSeparately) {
  BlockStatsMap map;
  map.add_flow(record(1, 0x0a000105, net::IpProto::kUdp, 2, 400));
  const BlockCounters* dst = map.find(net::Block24(0x0a0001));
  ASSERT_NE(dst, nullptr);
  EXPECT_EQ(dst->rx_udp_packets, 2u);
  EXPECT_EQ(dst->rx_tcp_packets, 0u);
  EXPECT_DOUBLE_EQ(dst->avg_tcp_packet_size(), 0.0);
}

TEST(BlockStatsMap, MergeSums) {
  BlockStatsMap a;
  BlockStatsMap b;
  a.add_flow(record(1, 0x0a000105, net::IpProto::kTcp, 1, 40));
  b.add_flow(record(1, 0x0a000105, net::IpProto::kTcp, 2, 96));
  a.merge(b);
  const BlockCounters* dst = a.find(net::Block24(0x0a0001));
  ASSERT_NE(dst, nullptr);
  EXPECT_EQ(dst->rx_tcp_packets, 3u);
  EXPECT_EQ(dst->rx_tcp_bytes, 136u);
  EXPECT_EQ(a.flows_seen(), 2u);
}

TEST(DetailedBlockStats, HistogramTracksMedianAndMean) {
  DetailedBlockStats stats;
  stats.add_flow(record(1, 2, net::IpProto::kTcp, 93, 93 * 40));
  stats.add_flow(record(1, 2, net::IpProto::kTcp, 7, 7 * 48));
  EXPECT_NEAR(stats.avg_tcp_packet_size(), 40.56, 0.01);
  EXPECT_DOUBLE_EQ(stats.median_tcp_packet_size(), 40.0);
  EXPECT_EQ(stats.tcp_sizes().total(), 100u);
}

TEST(DetailedBlockStats, FlowMeanAttributedPerPacket) {
  DetailedBlockStats stats;
  // One flow with mixed sizes: mean 44 attributed to each of 2 packets.
  stats.add_flow(record(1, 2, net::IpProto::kTcp, 2, 88));
  EXPECT_EQ(stats.tcp_sizes().count_of(44), 2u);
}

TEST(DetailedBlockStats, IgnoresUdpInHistogram) {
  DetailedBlockStats stats;
  stats.add_flow(record(1, 2, net::IpProto::kUdp, 5, 1000));
  EXPECT_TRUE(stats.tcp_sizes().empty());
  EXPECT_DOUBLE_EQ(stats.median_tcp_packet_size(), 0.0);
  EXPECT_EQ(stats.counters().rx_udp_packets, 5u);
}

}  // namespace
}  // namespace mtscope::telemetry
