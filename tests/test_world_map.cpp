#include "analysis/world_map.hpp"

#include <gtest/gtest.h>

namespace mtscope::analysis {
namespace {

class WorldMapTest : public ::testing::Test {
 protected:
  WorldMapTest() {
    geodb_.add(*net::Prefix::parse("60.0.0.0/9"), "US");
    geodb_.add(*net::Prefix::parse("60.128.0.0/9"), "CN");
    pfx2as_.add(*net::Prefix::parse("60.0.0.0/9"), net::AsNumber(100));
    pfx2as_.add(*net::Prefix::parse("60.128.0.0/9"), net::AsNumber(200));
  }

  geo::GeoDb geodb_;
  routing::PrefixToAs pfx2as_;
};

TEST_F(WorldMapTest, AggregatesByCountryAndAs) {
  trie::Block24Set blocks;
  blocks.insert(net::Block24(60u << 16 | 1));          // US
  blocks.insert(net::Block24(60u << 16 | 2));          // US
  blocks.insert(net::Block24(60u << 16 | 0x8000 | 1)); // CN
  blocks.insert(net::Block24(99u << 16 | 1));          // unmapped

  const GeoSummary summary = summarize_geography(blocks, geodb_, pfx2as_);
  EXPECT_EQ(summary.total_blocks, 4u);
  EXPECT_EQ(summary.distinct_countries, 3u);  // US, CN, "??"
  EXPECT_EQ(summary.distinct_ases, 2u);
  ASSERT_FALSE(summary.by_country.empty());
  EXPECT_EQ(summary.by_country[0].country, "US");
  EXPECT_EQ(summary.by_country[0].blocks, 2u);
  EXPECT_EQ(summary.by_continent.at(geo::Continent::kNorthAmerica), 2u);
  EXPECT_EQ(summary.by_continent.at(geo::Continent::kAsia), 1u);
  EXPECT_EQ(summary.by_continent.at(geo::Continent::kInternational), 1u);
}

TEST_F(WorldMapTest, EmptySet) {
  const GeoSummary summary = summarize_geography(trie::Block24Set{}, geodb_, pfx2as_);
  EXPECT_EQ(summary.total_blocks, 0u);
  EXPECT_TRUE(summary.by_country.empty());
  EXPECT_EQ(summary.distinct_ases, 0u);
}

TEST_F(WorldMapTest, RenderContainsBarsAndContinents) {
  trie::Block24Set blocks;
  for (std::uint32_t i = 0; i < 100; ++i) blocks.insert(net::Block24(60u << 16 | i));
  const GeoSummary summary = summarize_geography(blocks, geodb_, pfx2as_);
  const std::string text = render_world_table(summary, 5);
  EXPECT_NE(text.find("US"), std::string::npos);
  EXPECT_NE(text.find('#'), std::string::npos);
  EXPECT_NE(text.find("NA=100"), std::string::npos);
}

TEST_F(WorldMapTest, TopNLimitsRows) {
  trie::Block24Set blocks;
  blocks.insert(net::Block24(60u << 16 | 1));
  blocks.insert(net::Block24(60u << 16 | 2));
  blocks.insert(net::Block24(60u << 16 | 0x8000 | 1));
  const GeoSummary summary = summarize_geography(blocks, geodb_, pfx2as_);
  const std::string one_row = render_world_table(summary, 1);
  EXPECT_EQ(one_row.find("CN"), std::string::npos);
}

}  // namespace
}  // namespace mtscope::analysis
