// Property tests over the pipeline's algebra: merge order must not matter,
// inference must be deterministic and monotone in its inputs, and the flow
// path must conserve packets.  The sliding window (src/ingest) is built on
// the same algebra, so its laws — admit order-independence, evict-then-
// readmit idempotence, empty-day coverage — are pinned here too.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>

#include "ingest/window.hpp"
#include "pipeline/collector.hpp"
#include "pipeline/inference.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"

namespace mtscope {
namespace {

std::vector<flow::FlowRecord> random_flows(std::uint64_t seed, std::size_t count) {
  util::Rng rng(seed);
  std::vector<flow::FlowRecord> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    flow::FlowRecord r;
    r.key.src = net::Ipv4Addr((60u << 24) | static_cast<std::uint32_t>(rng.uniform(1u << 20)));
    r.key.dst = net::Ipv4Addr((60u << 24) | static_cast<std::uint32_t>(rng.uniform(1u << 20)));
    r.key.src_port = static_cast<std::uint16_t>(rng.uniform(65536));
    r.key.dst_port = static_cast<std::uint16_t>(rng.uniform(65536));
    r.key.proto = rng.chance(0.85) ? net::IpProto::kTcp : net::IpProto::kUdp;
    r.packets = 1 + rng.uniform(4);
    r.bytes = r.packets * (rng.chance(0.8) ? 40 : 1400);
    r.sampling_rate = 100;
    out.push_back(r);
  }
  return out;
}

pipeline::InferenceResult infer(const pipeline::VantageStats& stats,
                                std::uint64_t tolerance = 0) {
  static routing::Rib rib = [] {
    routing::Rib r;
    r.announce(*net::Prefix::parse("60.0.0.0/8"), net::AsNumber(1));
    return r;
  }();
  static const routing::SpecialPurposeRegistry registry =
      routing::SpecialPurposeRegistry::standard();
  pipeline::PipelineConfig config;
  config.spoof_tolerance_pkts = tolerance;
  return pipeline::InferenceEngine(config, rib, registry).infer(stats);
}

// Full structural equality of two stats objects: same day coverage, same
// block set, and per block the same counters, host bitmap, and per-IP
// records (the store keeps those sorted by host, so the runs compare
// element-wise; row order may differ between the two stores).
void expect_stats_equal(const pipeline::VantageStats& x, const pipeline::VantageStats& y) {
  EXPECT_EQ(x.day_count(), y.day_count());
  EXPECT_EQ(x.flows_ingested(), y.flows_ingested());
  ASSERT_EQ(x.blocks().size(), y.blocks().size());
  for (const pipeline::BlockStatsStore::ConstRow xo : x.blocks()) {
    const net::Block24 block = xo.block();
    const pipeline::BlockStatsStore::ConstRow yo = y.find(block);
    ASSERT_TRUE(yo) << block.to_string();
    EXPECT_EQ(xo.rx_packets(), yo.rx_packets()) << block.to_string();
    EXPECT_EQ(xo.rx_tcp_packets(), yo.rx_tcp_packets()) << block.to_string();
    EXPECT_EQ(xo.rx_tcp_bytes(), yo.rx_tcp_bytes()) << block.to_string();
    EXPECT_EQ(xo.rx_est_packets(), yo.rx_est_packets()) << block.to_string();
    EXPECT_EQ(xo.tx_packets(), yo.tx_packets()) << block.to_string();
    for (int w = 0; w < 4; ++w) {
      EXPECT_EQ(xo.tx_host_bits()[w], yo.tx_host_bits()[w]) << block.to_string();
    }
    const auto xi = xo.ips();
    const auto yi = yo.ips();
    ASSERT_EQ(xi.size(), yi.size()) << block.to_string();
    for (std::size_t i = 0; i < xi.size(); ++i) {
      EXPECT_EQ(xi[i].host, yi[i].host) << block.to_string();
      EXPECT_EQ(xi[i].packets, yi[i].packets) << block.to_string();
      EXPECT_EQ(xi[i].tcp_packets, yi[i].tcp_packets) << block.to_string();
      EXPECT_EQ(xi[i].tcp_bytes, yi[i].tcp_bytes) << block.to_string();
    }
  }
}

class PipelineProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineProperties, MergeIsOrderIndependent) {
  const auto flows_a = random_flows(GetParam(), 4000);
  const auto flows_b = random_flows(GetParam() ^ 0xabcd, 4000);

  pipeline::VantageStats ab;
  ab.add_flows(flows_a, 100, 0);
  ab.add_flows(flows_b, 100, 1);

  pipeline::VantageStats a;
  a.add_flows(flows_a, 100, 0);
  pipeline::VantageStats b;
  b.add_flows(flows_b, 100, 1);
  b.merge(a);  // reversed merge direction

  const auto result_ab = infer(ab);
  const auto result_ba = infer(b);
  EXPECT_EQ(result_ab.dark, result_ba.dark);
  EXPECT_EQ(result_ab.unclean, result_ba.unclean);
  EXPECT_EQ(result_ab.gray, result_ba.gray);
  EXPECT_EQ(result_ab.funnel.seen, result_ba.funnel.seen);
}

TEST_P(PipelineProperties, MergeIsCommutative) {
  // merge(A, B) == merge(B, A), structurally — days_ union, rx_est_packets
  // sums, host bitmaps, everything.  The sharded collector silently relies
  // on this when the merge tree pairs workers in arbitrary positions.
  const auto flows_a = random_flows(GetParam(), 3000);
  const auto flows_b = random_flows(GetParam() ^ 0x5a5a, 3000);

  pipeline::VantageStats ab;
  ab.add_flows(flows_a, 100, 0);
  pipeline::VantageStats b;
  b.add_flows(flows_b, 100, 1);
  ab.merge(b);

  pipeline::VantageStats ba;
  ba.add_flows(flows_b, 100, 1);
  pipeline::VantageStats a;
  a.add_flows(flows_a, 100, 0);
  ba.merge(a);

  expect_stats_equal(ab, ba);
}

TEST_P(PipelineProperties, MergeIsAssociativeAndMatchesSingleIngest) {
  // Partition one random flow stream into three arbitrary shards:
  // ((A+B)+C), (A+(B+C)) and ingest-everything-into-one-object must agree
  // exactly.  Days are reused across partitions so the union dedups.
  const auto flows = random_flows(GetParam() ^ 0x77, 9000);
  util::Rng rng(GetParam() * 31 + 7);
  std::array<std::vector<flow::FlowRecord>, 3> part;
  for (const flow::FlowRecord& r : flows) {
    part[rng.uniform(3)].push_back(r);
  }
  const std::array<int, 3> day = {0, 1, 0};

  std::array<pipeline::VantageStats, 3> shard;
  for (std::size_t i = 0; i < 3; ++i) {
    shard[i].add_flows(part[i], 100, day[i]);
  }

  pipeline::VantageStats left = shard[0];   // (A + B) + C
  left.merge(shard[1]);
  left.merge(shard[2]);

  pipeline::VantageStats bc = shard[1];     // A + (B + C)
  bc.merge(shard[2]);
  pipeline::VantageStats right = shard[0];
  right.merge(bc);

  pipeline::VantageStats whole;             // one object, no merge at all
  for (std::size_t i = 0; i < 3; ++i) {
    whole.add_flows(part[i], 100, day[i]);
  }

  expect_stats_equal(left, right);
  expect_stats_equal(left, whole);
  EXPECT_EQ(left.day_count(), 2);  // {0, 1}: the repeated day deduplicated

  // And the algebra carries through inference: identical classification.
  const auto from_merge = infer(left);
  const auto from_whole = infer(whole);
  EXPECT_TRUE(from_merge.dark == from_whole.dark);
  EXPECT_EQ(from_merge.unclean, from_whole.unclean);
  EXPECT_EQ(from_merge.gray, from_whole.gray);
  EXPECT_EQ(from_merge.funnel, from_whole.funnel);
}

TEST_P(PipelineProperties, MergeWithEmptyIsIdentity) {
  // An empty stats object is the neutral element in both directions — in
  // particular it contributes no phantom day (day_count 0, not 1).
  const auto flows = random_flows(GetParam() ^ 0xfe, 2000);
  pipeline::VantageStats value;
  value.add_flows(flows, 100, 4);

  pipeline::VantageStats left;
  left.merge(value);
  expect_stats_equal(left, value);
  EXPECT_EQ(left.day_count(), 1);

  pipeline::VantageStats right = value;
  right.merge(pipeline::VantageStats{});
  expect_stats_equal(right, value);
}

TEST_P(PipelineProperties, InferenceIsDeterministic) {
  pipeline::VantageStats stats;
  stats.add_flows(random_flows(GetParam(), 5000), 100, 0);
  const auto first = infer(stats);
  const auto second = infer(stats);
  EXPECT_EQ(first.dark, second.dark);
  EXPECT_EQ(first.gray, second.gray);
}

TEST_P(PipelineProperties, ToleranceIsMonotone) {
  // Raising the spoofing tolerance can only grow the dark set.
  pipeline::VantageStats stats;
  stats.add_flows(random_flows(GetParam(), 6000), 100, 0);
  std::size_t previous = 0;
  for (const std::uint64_t tolerance : {0, 1, 2, 5, 100}) {
    const auto result = infer(stats, tolerance);
    EXPECT_GE(result.dark.size(), previous) << "tolerance " << tolerance;
    previous = result.dark.size();
  }
}

TEST_P(PipelineProperties, ThresholdIsMonotone) {
  // Relaxing the size threshold can only let more blocks down the funnel.
  pipeline::VantageStats stats;
  stats.add_flows(random_flows(GetParam(), 6000), 100, 0);
  static routing::Rib rib = [] {
    routing::Rib r;
    r.announce(*net::Prefix::parse("60.0.0.0/8"), net::AsNumber(1));
    return r;
  }();
  static const routing::SpecialPurposeRegistry registry =
      routing::SpecialPurposeRegistry::standard();
  std::uint64_t previous = 0;
  for (const double threshold : {40.0, 44.0, 48.0, 1500.0}) {
    pipeline::PipelineConfig config;
    config.avg_size_threshold = threshold;
    const auto result = pipeline::InferenceEngine(config, rib, registry).infer(stats);
    EXPECT_GE(result.funnel.after_size, previous) << "threshold " << threshold;
    previous = result.funnel.after_size;
  }
}

TEST_P(PipelineProperties, ClassificationPartitionsFunnelSurvivors) {
  pipeline::VantageStats stats;
  stats.add_flows(random_flows(GetParam(), 8000), 100, 0);
  const auto result = infer(stats, 1);
  EXPECT_EQ(result.dark.size() + result.unclean + result.gray, result.funnel.after_volume);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineProperties, ::testing::Values(11, 23, 47, 91));

// --- Sliding-window laws (src/ingest/window.hpp) ----------------------------
//
// The window is per-day VantageStats slices plus a tree-merge; each law
// below is the window-level restatement of a merge property the suite
// above already pins, so a failure localises to the slice bookkeeping.

class WindowProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WindowProperties, AdmitOrderDoesNotChangeTheMergedView) {
  // Datasets routed to days {0,1,2} in three different arrival orders —
  // forward, reverse, interleaved — must produce identical merged stats.
  // Streaming sources do not promise day-ordered delivery within a day's
  // worth of vantages, so admit must commute.
  const auto d0 = random_flows(GetParam(), 3000);
  const auto d1 = random_flows(GetParam() ^ 0x1111, 3000);
  const auto d2 = random_flows(GetParam() ^ 0x2222, 3000);

  ingest::SlidingWindow forward(7);
  forward.add_flows(0, d0, 100);
  forward.add_flows(1, d1, 100);
  forward.add_flows(2, d2, 100);

  ingest::SlidingWindow reverse(7);
  reverse.add_flows(2, d2, 100);
  reverse.add_flows(1, d1, 100);
  reverse.add_flows(0, d0, 100);

  ingest::SlidingWindow interleaved(7);  // day 1 split across two admits
  interleaved.add_flows(1, std::span(d1).subspan(0, 1500), 100);
  interleaved.add_flows(0, d0, 100);
  interleaved.add_flows(2, d2, 100);
  interleaved.add_flows(1, std::span(d1).subspan(1500), 100);

  const auto want = forward.merged();
  expect_stats_equal(want, reverse.merged());
  expect_stats_equal(want, interleaved.merged());
  EXPECT_EQ(forward.days(), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(reverse.days(), (std::vector<int>{0, 1, 2}));
}

TEST_P(WindowProperties, MergedMatchesSingleObjectIngest) {
  // The batch-equivalence contract at the stats layer: a window's merged()
  // equals one VantageStats fed the same datasets directly.
  const auto d0 = random_flows(GetParam() ^ 0xa, 4000);
  const auto d1 = random_flows(GetParam() ^ 0xb, 4000);

  ingest::SlidingWindow window(3);
  window.add_flows(4, d0, 100);
  window.add_flows(5, d1, 100);

  pipeline::VantageStats batch;
  batch.add_flows(d0, 100, 4);
  batch.add_flows(d1, 100, 5);

  expect_stats_equal(window.merged(), batch);
  EXPECT_EQ(window.flows_ingested(), batch.flows_ingested());
}

TEST_P(WindowProperties, EvictThenReadmitIsIdempotent) {
  // Evicting a day and admitting the identical datasets again must land
  // the window in exactly the state it had before the eviction — the
  // replay path after an ingest restart.
  const auto d0 = random_flows(GetParam() ^ 0xc, 3000);
  const auto d1 = random_flows(GetParam() ^ 0xd, 3000);

  ingest::SlidingWindow window(7);
  window.add_flows(0, d0, 100);
  window.add_flows(1, d1, 100);
  const auto before = window.merged();

  const auto report = window.evict_before(1);
  EXPECT_EQ(report.days, 1);
  EXPECT_GT(report.rows, 0u);
  EXPECT_EQ(report.flows, d0.size());
  EXPECT_EQ(window.days(), (std::vector<int>{1}));

  window.add_flows(0, d0, 100);
  expect_stats_equal(window.merged(), before);
  EXPECT_EQ(window.days(), (std::vector<int>{0, 1}));
}

TEST_P(WindowProperties, AdvanceEvictsExactlyTheAgedOutDays) {
  // advance_to(newest) keeps [newest - W + 1, newest] and reports what it
  // dropped; re-advancing to the same day is a no-op.
  ingest::SlidingWindow window(3);
  for (int day = 0; day < 5; ++day) {
    window.add_flows(day, random_flows(GetParam() + static_cast<std::uint64_t>(day), 500), 100);
  }
  const auto report = window.advance_to(4);  // retain {2,3,4}
  EXPECT_EQ(report.days, 2);
  EXPECT_EQ(window.days(), (std::vector<int>{2, 3, 4}));

  const auto again = window.advance_to(4);
  EXPECT_EQ(again.days, 0);
  EXPECT_EQ(again.rows, 0u);
  EXPECT_EQ(window.slice_count(), 3u);
}

TEST_P(WindowProperties, EmptyDayIsCoveredButContributesNothing) {
  // note_day admits an outage day: it must widen day coverage (the per-day
  // volume normalisation divides by it) without touching any block counter,
  // and it must evict like any other slice.
  const auto flows = random_flows(GetParam() ^ 0xe, 4000);

  ingest::SlidingWindow with_gap(7);
  with_gap.add_flows(0, flows, 100);
  with_gap.note_day(1);

  pipeline::VantageStats batch;  // batch listing the same empty day
  batch.add_flows(flows, 100, 0);
  batch.note_day(1);

  const auto merged = with_gap.merged();
  expect_stats_equal(merged, batch);
  EXPECT_EQ(merged.day_count(), 2);
  EXPECT_EQ(with_gap.days(), (std::vector<int>{0, 1}));

  // The empty day changes inference (volume normalisation) but not the
  // underlying block counters.
  ingest::SlidingWindow without_gap(7);
  without_gap.add_flows(0, flows, 100);
  EXPECT_EQ(merged.blocks().size(), without_gap.merged().blocks().size());
  EXPECT_EQ(merged.flows_ingested(), without_gap.merged().flows_ingested());

  const auto report = with_gap.advance_to(7);  // 7-day window ending at 7 covers {1..7}
  EXPECT_EQ(report.days, 1);                   // only day 0 aged out
  EXPECT_EQ(with_gap.days(), (std::vector<int>{1}));
  EXPECT_EQ(with_gap.merged().day_count(), 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WindowProperties, ::testing::Values(11, 23, 47, 91));

TEST(FlowPathConservation, SimulatedDayConservesPackets) {
  // Packets generated == sum of packets in decoded IPFIX flows, across the
  // whole sort -> FlowTable -> encode -> decode path.
  const sim::Simulation simulation{sim::SimConfig::tiny(77)};
  for (int day = 0; day < 3; ++day) {
    const auto data = simulation.run_ixp_day(0, day);
    std::uint64_t decoded_packets = 0;
    for (const auto& flow : data.flows) decoded_packets += flow.packets;
    EXPECT_EQ(decoded_packets, data.sampled_packets) << "day " << day;
  }
}

TEST(FlowPathConservation, CollectorMatchesManualAccumulation) {
  const sim::Simulation simulation{sim::SimConfig::tiny(78)};
  const std::size_t ixps[] = {0, 1};
  const int days[] = {0, 1};
  const auto collected = pipeline::collect_stats(simulation, ixps, days);

  pipeline::VantageStats manual(simulation.plan().universe_mask());
  for (const int day : days) {
    for (const std::size_t i : ixps) {
      const auto data = simulation.run_ixp_day(i, day);
      manual.add_flows(data.flows, simulation.ixps()[i].sampling_rate(), day);
    }
  }
  EXPECT_EQ(collected.blocks().size(), manual.blocks().size());
  EXPECT_EQ(collected.flows_ingested(), manual.flows_ingested());
  EXPECT_EQ(collected.day_count(), manual.day_count());
}

}  // namespace
}  // namespace mtscope
