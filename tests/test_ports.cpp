#include "analysis/ports.hpp"

#include <gtest/gtest.h>

namespace mtscope::analysis {
namespace {

using net::AsNumber;
using net::Block24;
using net::Prefix;

TEST(PortCounter, TopOrderingAndTotals) {
  PortCounter counter;
  counter.add(23, 100);
  counter.add(80, 50);
  counter.add(443, 50);
  counter.add(22, 1);
  const auto top = counter.top(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].first, 23);
  EXPECT_EQ(top[1].first, 80);   // ties broken by port number
  EXPECT_EQ(top[2].first, 443);
  EXPECT_EQ(counter.total(), 201u);
  EXPECT_EQ(counter.count_of(22), 1u);
  EXPECT_EQ(counter.count_of(9999), 0u);
}

TEST(PortCounter, AddPacketsCountsOnlyTcp) {
  PortCounter counter;
  flow::PacketMeta tcp;
  tcp.proto = net::IpProto::kTcp;
  tcp.dst_port = 23;
  flow::PacketMeta udp;
  udp.proto = net::IpProto::kUdp;
  udp.dst_port = 53;
  counter.add_packets(std::vector<flow::PacketMeta>{tcp, tcp, udp});
  EXPECT_EQ(counter.count_of(23), 2u);
  EXPECT_EQ(counter.count_of(53), 0u);
}

class PortActivityTest : public ::testing::Test {
 protected:
  PortActivityTest() {
    geodb_.add(*Prefix::parse("60.0.0.0/9"), "US");    // NA
    geodb_.add(*Prefix::parse("60.128.0.0/9"), "ZA");  // AF
    pfx2as_.add(*Prefix::parse("60.0.0.0/9"), AsNumber(1));
    pfx2as_.add(*Prefix::parse("60.128.0.0/9"), AsNumber(2));
    nettypes_.add(AsNumber(1), geo::NetType::kDataCenter);
    nettypes_.add(AsNumber(2), geo::NetType::kIsp);
    dark_.insert(Block24(60u << 16 | 1));           // US, DC
    dark_.insert(Block24(60u << 16 | 0x8000 | 1));  // ZA, ISP
  }

  static flow::FlowRecord flow_to(std::uint32_t dst, std::uint16_t port, std::uint64_t packets,
                                  net::IpProto proto = net::IpProto::kTcp) {
    flow::FlowRecord r;
    r.key.src = net::Ipv4Addr(0x01010101);
    r.key.dst = net::Ipv4Addr(dst);
    r.key.dst_port = port;
    r.key.proto = proto;
    r.packets = packets;
    r.bytes = packets * 40;
    return r;
  }

  geo::GeoDb geodb_;
  geo::NetTypeDb nettypes_;
  routing::PrefixToAs pfx2as_;
  trie::Block24Set dark_;
};

TEST_F(PortActivityTest, CountsByRegionAndType) {
  PortActivity activity(geodb_, nettypes_, pfx2as_);
  const std::uint32_t us_dark = (60u << 24) | (1u << 8) | 5;
  const std::uint32_t za_dark = (60u << 24) | (0x8001u << 8) | 5;
  activity.add_flows(std::vector<flow::FlowRecord>{
                         flow_to(us_dark, 23, 10),
                         flow_to(za_dark, 37215, 20),
                         flow_to(us_dark, 53, 5, net::IpProto::kUdp),  // non-TCP ignored
                     },
                     dark_);

  EXPECT_EQ(activity.count(geo::Continent::kNorthAmerica, 23), 10u);
  EXPECT_EQ(activity.count(geo::Continent::kAfrica, 37215), 20u);
  EXPECT_EQ(activity.count(geo::Continent::kNorthAmerica, 37215), 0u);
  EXPECT_EQ(activity.count(geo::NetType::kDataCenter, 23), 10u);
  EXPECT_EQ(activity.count(geo::NetType::kIsp, 37215), 20u);
  EXPECT_EQ(activity.grand_total(), 30u);
  EXPECT_DOUBLE_EQ(activity.share(geo::Continent::kNorthAmerica, 23), 1.0);
  EXPECT_DOUBLE_EQ(activity.global_share(geo::Continent::kAfrica, 37215), 20.0 / 30.0);
}

TEST_F(PortActivityTest, NonDarkDestinationsIgnored) {
  PortActivity activity(geodb_, nettypes_, pfx2as_);
  const std::uint32_t not_dark = (60u << 24) | (7u << 8) | 5;
  activity.add_flows(std::vector<flow::FlowRecord>{flow_to(not_dark, 23, 10)}, dark_);
  EXPECT_EQ(activity.grand_total(), 0u);
}

TEST_F(PortActivityTest, JointTopPortsUnionsRegions) {
  PortActivity activity(geodb_, nettypes_, pfx2as_);
  const std::uint32_t us_dark = (60u << 24) | (1u << 8) | 5;
  const std::uint32_t za_dark = (60u << 24) | (0x8001u << 8) | 5;
  activity.add_flows(std::vector<flow::FlowRecord>{
                         flow_to(us_dark, 23, 100),
                         flow_to(us_dark, 80, 50),
                         flow_to(za_dark, 37215, 60),
                         flow_to(za_dark, 23, 10),
                     },
                     dark_);

  // Top-1 per region: NA -> 23, AF -> 37215; union ordered by global count.
  const auto joint = activity.joint_top_ports_by_region(1);
  ASSERT_EQ(joint.size(), 2u);
  EXPECT_EQ(joint[0], 23);
  EXPECT_EQ(joint[1], 37215);

  const auto by_type = activity.joint_top_ports_by_type(2);
  EXPECT_GE(by_type.size(), 2u);
}

TEST_F(PortActivityTest, MatrixRendering) {
  PortActivity activity(geodb_, nettypes_, pfx2as_);
  const std::uint32_t us_dark = (60u << 24) | (1u << 8) | 5;
  activity.add_flows(std::vector<flow::FlowRecord>{flow_to(us_dark, 23, 100)}, dark_);
  const std::uint16_t ports[] = {23};
  const std::string region_matrix = activity.render_region_matrix(ports);
  EXPECT_NE(region_matrix.find("23"), std::string::npos);
  EXPECT_NE(region_matrix.find("####"), std::string::npos);  // full share bar
  const std::string type_matrix = activity.render_type_matrix(ports);
  EXPECT_NE(type_matrix.find("Data Center"), std::string::npos);
}

}  // namespace
}  // namespace mtscope::analysis
