# CMake generated Testfile for 
# Source directory: /root/repo/src/flow
# Build directory: /root/repo/build-review/src/flow
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
