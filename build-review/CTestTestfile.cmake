# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build-review
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(metrics_snapshot_check "/usr/bin/cmake" "-DCLI=/root/repo/build-review/tools/mtscope" "-DOUT_DIR=/root/repo/build-review" "-P" "/root/repo/cmake/metrics_snapshot_check.cmake")
set_tests_properties(metrics_snapshot_check PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;53;add_test;/root/repo/CMakeLists.txt;0;")
subdirs("src")
subdirs("tests")
subdirs("bench-build")
subdirs("examples-build")
subdirs("tools-build")
