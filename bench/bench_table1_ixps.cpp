// Table 1: the IXP fleet — member counts and sampled flow volumes for the
// measurement week.
#include "bench_common.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace mtscope;

int main() {
  benchx::print_header(
      "Table 1 — IXPs: basic statistics (measurement week)",
      "14 IXPs in 3 regions; CE1 largest (1,000+ members, 68.5B sampled flows/week)");

  const sim::Simulation& simulation = benchx::shared_simulation();

  util::TextTable table({"IXP", "Region", "#Members (AS)", "Sampled flows (week)",
                         "Sampled pkts (week)", "Sampling 1:N"});

  std::uint64_t total_flows = 0;
  std::string biggest_code;
  std::uint64_t biggest_flows = 0;

  for (std::size_t i = 0; i < simulation.ixps().size(); ++i) {
    const sim::Ixp& ixp = simulation.ixps()[i];
    std::uint64_t flows = 0;
    std::uint64_t packets = 0;
    for (int day = 0; day < 7; ++day) {
      const sim::IxpDayData data = simulation.run_ixp_day(i, day);
      flows += data.flows.size();
      packets += data.sampled_packets;
    }
    total_flows += flows;
    if (flows > biggest_flows) {
      biggest_flows = flows;
      biggest_code = ixp.spec().code;
    }
    table.add_row({ixp.spec().code, ixp.spec().region, std::to_string(ixp.member_count()),
                   util::with_commas(flows), util::with_commas(packets),
                   std::to_string(ixp.sampling_rate())});
  }
  std::printf("%s", table.render().c_str());

  benchx::print_comparison("largest vantage point by sampled flows", "CE1", biggest_code);
  benchx::print_comparison("fleet total sampled flows (week)", "86.7B (unscaled)",
                           util::with_commas(total_flows) + " (scaled sim)");
  return 0;
}
