// Table 3: tuning the packet-size fingerprint on the labelled ISP dataset —
// median vs average inbound TCP packet size at thresholds 40/42/44/46 bytes.
#include "bench_common.hpp"
#include "pipeline/classifier.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace mtscope;

int main() {
  benchx::print_header(
      "Table 3 — packet-size classifier sweep (ISP ground truth)",
      "average@44 wins: FPR 0.87%, FNR 0.41%, F1 99.65%; median@44: FPR 22.59%; "
      "average@40 useless (FNR 99.1%)");

  const sim::Simulation& simulation = benchx::shared_simulation();
  const auto observations = simulation.run_isp_week();

  pipeline::LabelConfig labels;
  labels.volume_scale = simulation.config().volume_scale;

  const auto summary = pipeline::summarize_labels(observations, labels);
  std::printf("labelled dataset: %llu blocks -> %llu dark, %llu active, %llu excluded\n",
              static_cast<unsigned long long>(summary.total),
              static_cast<unsigned long long>(summary.labelled_dark),
              static_cast<unsigned long long>(summary.labelled_active),
              static_cast<unsigned long long>(summary.excluded));
  std::printf("(paper: 26,079 -> 18,151 dark, 5,835 active, 2,093 excluded)\n\n");

  const double thresholds[] = {40.0, 42.0, 44.0, 46.0};
  const auto outcomes = pipeline::sweep_classifier(observations, thresholds, labels);

  util::TextTable table(
      {"Feature", "Threshold (B)", "FPR", "FNR", "TPR", "TNR", "F1-score"});
  double avg44_fpr = 0;
  double avg44_f1 = 0;
  double avg40_fnr = 0;
  double med44_fpr = 0;
  for (const auto& o : outcomes) {
    table.add_row({std::string(pipeline::size_feature_name(o.feature)),
                   util::fixed(o.threshold, 0), util::percent(o.fpr()), util::percent(o.fnr()),
                   util::percent(o.tpr()), util::percent(o.tnr()), util::percent(o.f1())});
    if (o.feature == pipeline::SizeFeature::kAverage && o.threshold == 44.0) {
      avg44_fpr = o.fpr();
      avg44_f1 = o.f1();
    }
    if (o.feature == pipeline::SizeFeature::kAverage && o.threshold == 40.0) {
      avg40_fnr = o.fnr();
    }
    if (o.feature == pipeline::SizeFeature::kMedian && o.threshold == 44.0) {
      med44_fpr = o.fpr();
    }
  }
  std::printf("%s", table.render().c_str());

  benchx::print_comparison("average@44: very low FPR", "0.87%", util::percent(avg44_fpr));
  benchx::print_comparison("average@44: F1", "99.65%", util::percent(avg44_f1));
  benchx::print_comparison("average@40: classifier collapses (FNR)", "99.10%",
                           util::percent(avg40_fnr));
  benchx::print_comparison("median@44: FPR blows up vs average@44", "22.59% vs 0.87%",
                           util::percent(med44_fpr) + " vs " + util::percent(avg44_fpr));
  return 0;
}
