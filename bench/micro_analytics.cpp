// Analytics-plane costs on a simulated multi-IXP week, three stages
// (DESIGN.md §15):
//
//   * matrix build rate — collect_stats with the IBR analytics tap off vs
//     on (same workload, same thread/shard grid), so the tap's overhead is
//     a measured number instead of folklore, plus the parallel matrix
//     checked cell-for-cell against a serial single-shard oracle;
//   * rollup throughput — build_analytics over the collected matrix and
//     the published snapshot (the meta-telescope intersect, labeling, the
//     detector, service and scanner rankings in one pass);
//   * detector pass time — detect_outages alone over the dense per-prefix
//     series, the piece that reruns on every ingest epoch.
//
// The ANALYTICS section is round-tripped through serialize/parse and must
// come back byte-identical; any divergence (matrix, rollup determinism or
// codec) flips bit_identical and the exit code, and
// cmake/analytics_gate.cmake fails the build on it.
//
// Every stage is timed best-of-N (the container's CPU budget jitters run
// to run; the minimum estimates what the code costs).  Emits
// BENCH_analytics.json.  MTSCOPE_BENCH_SCALE=small shrinks to 2 days for
// quick iteration, matching the other bench binaries.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <vector>

#include "bench_common.hpp"
#include "ingest/daemon.hpp"
#include "pipeline/collector.hpp"
#include "pipeline/inference.hpp"
#include "pipeline/parallel.hpp"
#include "routing/special_purpose.hpp"
#include "serve/analytics_format.hpp"
#include "serve/snapshot.hpp"
#include "sim/simulation.hpp"

using namespace mtscope;

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool matrices_equal(const analytics::IbrMatrix& a, const analytics::IbrMatrix& b) {
  const auto rx_a = a.rx_cells();
  const auto rx_b = b.rx_cells();
  if (rx_a.size() != rx_b.size()) return false;
  for (std::size_t i = 0; i < rx_a.size(); ++i) {
    if (rx_a[i].block != rx_b[i].block || rx_a[i].port != rx_b[i].port ||
        rx_a[i].day != rx_b[i].day || rx_a[i].packets != rx_b[i].packets) {
      return false;
    }
  }
  return a.src_port_count() == b.src_port_count() &&
         a.src_touch_count() == b.src_touch_count();
}

}  // namespace

int main() {
  sim::SimConfig config = sim::SimConfig::tiny(42);
  config.ixps = sim::SimConfig::default_ixps();
  const char* scale = std::getenv("MTSCOPE_BENCH_SCALE");
  const bool small = scale != nullptr && std::strcmp(scale, "small") == 0;
  const int day_count = small ? 2 : 7;
  const int reps = small ? 5 : 3;

  const sim::Simulation simulation(config);
  const auto ixps = pipeline::all_ixps(simulation);
  std::vector<int> days;
  for (int d = 0; d < day_count; ++d) days.push_back(d);

  std::printf(
      "== micro_analytics: %zu IXPs x %d days, tap + rollup + detector "
      "(best of %d) ==\n",
      ixps.size(), day_count, reps);

  bool bit_identical = true;

  // --- stage 1: the tap's collect overhead, off vs on -----------------------
  constexpr unsigned kThreads = 4;
  constexpr unsigned kShards = 16;
  double base_collect_ms = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    pipeline::CollectOptions options;
    options.threads = kThreads;
    options.shards = kShards;
    const double t0 = now_ms();
    const auto stats = pipeline::collect_stats(simulation, ixps, days, options);
    const double ms = now_ms() - t0;
    if (rep == 0 || ms < base_collect_ms) base_collect_ms = ms;
  }

  double tap_collect_ms = 0.0;
  pipeline::VantageStats stats;
  for (int rep = 0; rep < reps; ++rep) {
    pipeline::CollectOptions options;
    options.threads = kThreads;
    options.shards = kShards;
    options.analytics = true;
    const double t0 = now_ms();
    auto with_tap = pipeline::collect_stats(simulation, ixps, days, options);
    const double ms = now_ms() - t0;
    if (rep == 0 || ms < tap_collect_ms) tap_collect_ms = ms;
    stats = std::move(with_tap);
  }

  // Serial single-shard oracle: the parallel fold must be cell-identical.
  {
    pipeline::CollectOptions serial_options;
    serial_options.analytics = true;
    const auto serial = pipeline::collect_stats(simulation, ixps, days, serial_options);
    if (!matrices_equal(stats.ibr(), serial.ibr())) {
      bit_identical = false;
      std::printf("  !! parallel matrix diverged from the serial oracle\n");
    }
  }

  const double overhead_pct =
      base_collect_ms > 0.0 ? (tap_collect_ms / base_collect_ms - 1.0) * 100.0 : 0.0;
  const double tap_flows_per_s =
      tap_collect_ms > 0.0
          ? static_cast<double>(stats.flows_ingested()) / (tap_collect_ms / 1000.0)
          : 0.0;
  std::printf(
      "  collect %2ut/%2ush     base %8.1f ms  with tap %8.1f ms  overhead %5.1f%%"
      "  (%zu cells, %.2fM flows/s)\n",
      kThreads, kShards, base_collect_ms, tap_collect_ms, overhead_pct,
      stats.ibr().rx_cell_count(), tap_flows_per_s / 1e6);

  // --- stage 2: rollup (build_analytics) over the published map -------------
  const auto registry = routing::SpecialPurposeRegistry::standard();
  pipeline::PipelineConfig pipeline_config;
  pipeline_config.volume_scale = simulation.config().volume_scale;
  const pipeline::InferenceEngine engine(pipeline_config, simulation.plan().rib(), registry);
  const auto result = pipeline::parallel_infer(engine, stats, kThreads);
  serve::RunMetadata meta;
  meta.seed = config.seed;
  meta.days = static_cast<std::uint32_t>(day_count);
  meta.source = "micro_analytics";
  auto snapshot = serve::build_snapshot(result, simulation.plan().rib(), meta);
  const serve::BlockLabeler labeler = ingest::plan_labeler(simulation.plan());

  double rollup_ms = 0.0;
  serve::AnalyticsData analytics_data;
  for (int rep = 0; rep < reps; ++rep) {
    const double t0 = now_ms();
    auto built = serve::build_analytics(stats.ibr(), snapshot, labeler);
    const double ms = now_ms() - t0;
    if (rep > 0 && !(built == analytics_data)) {
      bit_identical = false;
      std::printf("  !! build_analytics is not deterministic across repetitions\n");
    }
    if (rep == 0 || ms < rollup_ms) rollup_ms = ms;
    analytics_data = std::move(built);
  }
  const double cells_per_s =
      rollup_ms > 0.0
          ? static_cast<double>(stats.ibr().rx_cell_count()) / (rollup_ms / 1000.0)
          : 0.0;
  std::printf(
      "  rollup              %8.1f ms  (%.2fM matrix cells/s -> %zu kept cells, "
      "%zu outages, %zu scanners)\n",
      rollup_ms, cells_per_s / 1e6, analytics_data.cells.size(),
      analytics_data.outages.size(), analytics_data.scanners.size());

  // --- stage 3: the detector alone over the dense series --------------------
  std::vector<analytics::PrefixDaySeries> dense;
  for (const serve::SeriesPoint& p : analytics_data.series) {
    if (dense.empty() || dense.back().prefix_id != p.prefix_id) {
      dense.push_back(
          {p.prefix_id, std::vector<std::uint64_t>(analytics_data.window_days, 0)});
    }
    dense.back().packets[p.day - analytics_data.first_day] += p.packets;
  }
  double detector_ms = 0.0;
  std::size_t detector_events = 0;
  for (int rep = 0; rep < reps; ++rep) {
    const double t0 = now_ms();
    const auto events = analytics::detect_outages(dense, analytics_data.first_day);
    const double ms = now_ms() - t0;
    if (rep == 0 || ms < detector_ms) detector_ms = ms;
    detector_events = events.size();
  }
  std::printf("  detector            %8.3f ms  (%zu series, %zu events)\n", detector_ms,
              dense.size(), detector_events);

  // --- codec round trip -----------------------------------------------------
  snapshot.analytics = analytics_data;
  const double ser_t0 = now_ms();
  const auto bytes = serve::serialize_snapshot(snapshot);
  const double serialize_ms = now_ms() - ser_t0;
  const double parse_t0 = now_ms();
  const auto parsed = serve::parse_snapshot(bytes);
  const double parse_ms = now_ms() - parse_t0;
  if (!parsed.ok() || !(parsed.value() == snapshot) ||
      serve::serialize_snapshot(parsed.value()) != bytes) {
    bit_identical = false;
    std::printf("  !! ANALYTICS section did not round-trip byte-identically\n");
  }
  std::printf("  codec               serialize %6.1f ms  parse %6.1f ms  (%zu bytes)  %s\n",
              serialize_ms, parse_ms, bytes.size(),
              bit_identical ? "bit-identical" : "MISMATCH");

  std::ofstream json("BENCH_analytics.json");
  json << "{\n"
       << "  \"meta\": ";
  benchx::write_meta_json(json);
  json << ",\n"
       << "  \"workload\": {\"ixps\": " << ixps.size() << ", \"days\": " << day_count
       << ", \"flows\": " << stats.flows_ingested()
       << ", \"blocks\": " << snapshot.blocks.size()
       << ", \"rx_cells\": " << stats.ibr().rx_cell_count()
       << ", \"matrix_bytes\": " << stats.ibr().memory_bytes() << "},\n"
       << "  \"tap\": {\"threads\": " << kThreads << ", \"shards\": " << kShards
       << ", \"base_collect_ms\": " << base_collect_ms
       << ", \"collect_ms\": " << tap_collect_ms
       << ", \"overhead_pct\": " << overhead_pct
       << ", \"flows_per_s\": " << tap_flows_per_s << "},\n"
       << "  \"rollup\": {\"build_ms\": " << rollup_ms
       << ", \"cells_per_s\": " << cells_per_s
       << ", \"kept_cells\": " << analytics_data.cells.size()
       << ", \"series_points\": " << analytics_data.series.size()
       << ", \"outages\": " << analytics_data.outages.size()
       << ", \"services\": " << analytics_data.services.size()
       << ", \"scanners\": " << analytics_data.scanners.size() << "},\n"
       << "  \"detector\": {\"pass_ms\": " << detector_ms
       << ", \"series\": " << dense.size() << ", \"events\": " << detector_events << "},\n"
       << "  \"codec\": {\"serialize_ms\": " << serialize_ms
       << ", \"parse_ms\": " << parse_ms << ", \"bytes\": " << bytes.size() << "},\n"
       << "  \"bit_identical\": " << (bit_identical ? "true" : "false") << "\n"
       << "}\n";
  std::printf("  wrote BENCH_analytics.json\n");

  return bit_identical ? 0 : 1;
}
