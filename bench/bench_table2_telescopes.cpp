// Table 2: operational telescopes — size, per-/24 daily packet count, TCP
// share and average TCP packet size, computed from raw telescope captures
// (full packets through the pcap-compatible capture path).
#include "bench_common.hpp"
#include "telemetry/block_stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace mtscope;

int main() {
  benchx::print_header(
      "Table 2 — Operational telescopes: basic statistics",
      "TUS1: 1856 /24s, 1.91M pkts/day/24, 93.8% TCP, avg 40.7B | TEU1: 1.79M, 90.4%, "
      "40.55B | TEU2: 2.29M, 79.5%, 40.78B");

  const sim::Simulation& simulation = benchx::shared_simulation();

  util::TextTable table({"Code", "Location", "Size (#/24s)", "Daily /24 pkt count",
                         "Share of TCP traffic", "Avg IP pkt size (TCP)"});

  struct Row {
    std::string code;
    double daily_per_24 = 0;
    double tcp_share = 0;
    double avg_size = 0;
  };
  std::vector<Row> rows;

  for (std::size_t t = 0; t < simulation.plan().telescopes().size(); ++t) {
    const sim::TelescopeInfo& telescope = simulation.plan().telescopes()[t];
    std::uint64_t total = 0;
    std::uint64_t tcp = 0;
    std::uint64_t tcp_bytes = 0;
    std::size_t window = 0;
    for (int day = 0; day < 7; ++day) {
      const sim::TelescopeDayData capture = simulation.run_telescope_day(t, day);
      window = capture.captured_blocks;
      for (const flow::PacketMeta& p : capture.packets) {
        ++total;
        if (p.proto == net::IpProto::kTcp) {
          ++tcp;
          tcp_bytes += p.ip_length;
        }
      }
    }
    Row row;
    row.code = telescope.spec.code;
    row.daily_per_24 =
        static_cast<double>(total) / (7.0 * static_cast<double>(window)) /
        simulation.config().volume_scale;  // back to paper units
    row.tcp_share = total == 0 ? 0 : static_cast<double>(tcp) / static_cast<double>(total);
    row.avg_size = tcp == 0 ? 0 : static_cast<double>(tcp_bytes) / static_cast<double>(tcp);
    rows.push_back(row);

    table.add_row({telescope.spec.code, telescope.spec.location,
                   util::with_commas(telescope.blocks.size()),
                   util::fixed(row.daily_per_24 / 1e6, 2) + "M", util::percent(row.tcp_share),
                   util::fixed(row.avg_size, 2) + "B"});
  }
  std::printf("%s", table.render().c_str());

  benchx::print_comparison("per-/24 daily packets near 2M everywhere", "1.79M - 2.29M",
                           util::fixed(rows[0].daily_per_24 / 1e6, 2) + "M - " +
                               util::fixed(rows[2].daily_per_24 / 1e6, 2) + "M");
  benchx::print_comparison("TEU2 receives the most IBR per /24", "2.29M (highest)",
                           rows[2].daily_per_24 > rows[0].daily_per_24 &&
                                   rows[2].daily_per_24 > rows[1].daily_per_24
                               ? "highest (matches)"
                               : "NOT highest");
  benchx::print_comparison("TEU2 has the lowest TCP share", "79.5% vs ~90-94%",
                           util::percent(rows[2].tcp_share) + " vs " +
                               util::percent(rows[0].tcp_share));
  benchx::print_comparison("average TCP packet size just above 40B", "40.55 - 40.78B",
                           util::fixed(rows[0].avg_size, 2) + " - " +
                               util::fixed(rows[2].avg_size, 2) + "B");
  return 0;
}
