// Table 5: top-10 TCP destination ports at each operational telescope, from
// raw captured packets, plus the cross-check against ports seen toward
// inferred meta-telescope prefixes at the IXPs (§4.3's "perfect overlap").
#include <algorithm>
#include <set>

#include "analysis/ports.hpp"
#include "bench_common.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace mtscope;

int main() {
  benchx::print_header(
      "Table 5 — top-10 TCP ports per telescope (week)",
      "23/22/80/443/8080 shared across sites; 6379 top-5 at TUS1+TEU2 but absent from "
      "TEU1's list; TEU1 misses 23/445 (ingress-blocked)");

  const sim::Simulation& simulation = benchx::shared_simulation();

  std::vector<std::vector<std::pair<std::uint16_t, std::uint64_t>>> tops;
  for (std::size_t t = 0; t < 3; ++t) {
    analysis::PortCounter counter;
    for (int day = 0; day < 7; ++day) {
      counter.add_packets(simulation.run_telescope_day(t, day).packets);
    }
    tops.push_back(counter.top(10));
  }

  util::TextTable table({"Rank", "TUS1", "TEU1", "TEU2"});
  for (std::size_t r = 0; r < 10; ++r) {
    std::vector<std::string> row = {"#" + std::to_string(r + 1)};
    for (std::size_t t = 0; t < 3; ++t) {
      row.push_back(r < tops[t].size() ? std::to_string(tops[t][r].first) : "-");
    }
    table.add_row(std::move(row));
  }
  std::printf("%s", table.render().c_str());

  const auto contains = [](const auto& top, std::uint16_t port) {
    return std::any_of(top.begin(), top.end(),
                       [&](const auto& entry) { return entry.first == port; });
  };

  // Shared ports across all three sites.
  std::set<std::uint16_t> shared;
  for (const auto& [port, count] : tops[0]) {
    if (contains(tops[1], port) && contains(tops[2], port)) shared.insert(port);
  }
  std::string shared_text;
  for (const std::uint16_t p : shared) shared_text += std::to_string(p) + " ";

  benchx::print_comparison("ports in every site's top-10", "22, 80, 443 (and more)",
                           shared_text);
  benchx::print_comparison("TEU1 top-10 misses blocked port 23", "absent",
                           contains(tops[1], 23) ? "PRESENT (mismatch)" : "absent (matches)");
  benchx::print_comparison("TEU1 top-10 misses blocked port 445", "absent",
                           contains(tops[1], 445) ? "PRESENT (mismatch)" : "absent (matches)");
  benchx::print_comparison("port 23 tops TUS1 and TEU2", "rank #1-2",
                           (tops[0][0].first == 23 && tops[2][0].first == 23)
                               ? "rank #1 at both (matches)"
                               : "check table");

  // Cross-check: ports toward inferred dark space at the IXPs.
  const auto ixps = benchx::all_ixp_indices(simulation);
  const int day0[] = {0};
  const auto stats = pipeline::collect_stats(simulation, ixps, day0);
  const auto result = benchx::run_inference(simulation, stats);
  analysis::PortCounter meta_counter;
  for (const std::size_t i : ixps) {
    const auto data = simulation.run_ixp_day(i, 0);
    for (const auto& flow : data.flows) {
      if (flow.key.proto == net::IpProto::kTcp &&
          result.dark.contains(net::Block24::containing(flow.key.dst))) {
        meta_counter.add(flow.key.dst_port, flow.packets);
      }
    }
  }
  const auto meta_top = meta_counter.top(5);
  std::string meta_text;
  for (const auto& [port, count] : meta_top) meta_text += std::to_string(port) + " ";
  benchx::print_comparison("meta-telescope top ports overlap telescopes'",
                           "22 23 80 443 8080", meta_text);
  return 0;
}
