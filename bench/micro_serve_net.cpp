// Loopback load test for the TCP query server (src/serve/server.hpp),
// four stages:
//
//  A. single-reactor protocol duel — 8 client threads pump pipelined
//     query batches over the line protocol, then the same addresses (same
//     per-client RNG seeds) as MTBIN frames; every reply byte is checked
//     against a locally built TelescopeIndex (line) or precomputed
//     response frames (binary).  Each protocol takes the best of
//     kProtocolReps reps, and binary/line is the headline ratio — the
//     binary codec must not lose to text parsing at the same workload.
//  B. multi-reactor run — the line workload against `reactors > 1`
//     (SO_REUSEPORT accept spreading), with one hot reload fired mid-run;
//     correctness across the epoch swap and per-reactor accept coverage
//     are hard-checked, and aggregate throughput must hold at least
//     kMultiFloorRatio of the single-reactor baseline.  On multicore
//     hosts the multi run should win outright; the ratio floor (not a
//     strict >=) is because this container may be single-core, where N
//     reactor threads only add scheduling overhead — same caveat as
//     BENCH_parallel (PR 1).
//  C. loadgen curves — a stepped open-loop sweep (serve/loadgen.hpp)
//     against a multi-reactor server records p50/p90/p99 latency per
//     offered-load step, once per protocol from the same seed: the honest
//     latency-vs-throughput shape for both wire formats.
//
// main() writes everything into BENCH_serve_net.json for trend tracking;
// cmake/serve_net_gate.cmake turns the recorded floors into a CI gate.
// MTSCOPE_BENCH_SCALE=small shrinks the workload for CI smoke runs.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "pipeline/inference.hpp"
#include "routing/special_purpose.hpp"
#include "serve/loadgen.hpp"
#include "serve/server.hpp"
#include "serve/snapshot.hpp"
#include "serve/telescope_index.hpp"
#include "serve/wire.hpp"
#include "util/rng.hpp"

using namespace mtscope;

namespace {

bool small_scale() {
  const char* scale = std::getenv("MTSCOPE_BENCH_SCALE");
  return scale != nullptr && std::strcmp(scale, "small") == 0;
}

constexpr int kClients = 8;
constexpr std::size_t kBatchQueries = 512;  // pipelining depth per client
constexpr double kMultiFloorRatio = 0.35;   // multi/single floor (see header)
constexpr int kProtocolReps = 2;            // best-of reps per protocol duel side

std::size_t workload_flows() { return small_scale() ? 50'000 : 500'000; }
std::size_t queries_per_client() { return small_scale() ? 8'192 : 131'072; }
int multi_reactors() {
  if (small_scale()) return 2;
  const auto hw = static_cast<int>(std::thread::hardware_concurrency());
  return std::min(4, std::max(2, hw));
}

// Same 60.0.0.0/6 workload as micro_snapshot: ~223k classified /24s at
// full scale, the regime of the paper's meta-telescope map.
serve::TelescopeSnapshot make_paper_scale_snapshot() {
  util::Rng rng(23);
  std::vector<flow::FlowRecord> flows;
  flows.reserve(workload_flows());
  for (std::size_t i = 0; i < workload_flows(); ++i) {
    flow::FlowRecord r;
    r.key.src = net::Ipv4Addr(0x0a000000 + static_cast<std::uint32_t>(rng.uniform(1u << 16)));
    r.key.dst = net::Ipv4Addr((60u << 24) + static_cast<std::uint32_t>(rng.uniform(1u << 26)));
    r.key.dst_port = 23;
    r.key.proto = rng.chance(0.9) ? net::IpProto::kTcp : net::IpProto::kUdp;
    r.packets = 1 + rng.uniform(3);
    r.bytes = r.packets * (rng.chance(0.8) ? 40 : 1400);
    r.sampling_rate = 100;
    flows.push_back(r);
  }
  pipeline::VantageStats stats;
  stats.add_flows(flows, 100, 0);

  routing::Rib rib;
  for (std::uint32_t i = 0; i < 64; ++i) {
    rib.announce(net::Prefix(net::Ipv4Addr((60u << 24) + (i << 20)), 12),
                 net::AsNumber(65000 + i));
  }
  const auto registry = routing::SpecialPurposeRegistry::standard();
  const pipeline::InferenceEngine engine(pipeline::PipelineConfig{}, rib, registry);
  const auto result = engine.infer(stats);

  serve::RunMetadata meta;
  meta.seed = 23;
  meta.flows_ingested = flows.size();
  meta.created_unix_s = 1'700'000'000;
  meta.source = "bench serve_net 60.0.0.0/6";
  return serve::build_snapshot(result, rib, meta);
}

/// One client's whole conversation, precomputed: per-batch request bytes
/// and the exact reply bytes the server must produce.
struct ClientScript {
  std::vector<std::string> requests;
  std::vector<std::string> expected;
};

ClientScript make_script(const serve::TelescopeIndex& index, std::uint64_t seed,
                         serve::WireProtocol proto) {
  util::Rng rng(seed);
  const auto& blocks = index.snapshot().blocks;
  ClientScript script;
  const std::size_t total = queries_per_client();
  const bool binary = proto == serve::WireProtocol::kBinary;
  for (std::size_t done = 0; done < total;) {
    const std::size_t batch = std::min(kBatchQueries, total - done);
    std::string request;
    std::string expected;
    // The MTBIN negotiation preamble rides the first batch, so the duel
    // charges the binary side its own setup cost.
    if (binary && done == 0) request += serve::wire::kPreamble;
    for (std::size_t i = 0; i < batch; ++i) {
      // Even probes hit a known block, odd probes are uniform v4 (mostly
      // misses) — the same mix micro_snapshot times in-process.  The RNG
      // draw sequence is protocol-independent: both sides of the duel see
      // exactly the same addresses for a given seed.
      net::Ipv4Addr addr{0};
      if (!blocks.empty() && (i & 1u) == 0) {
        const auto& entry =
            blocks[static_cast<std::size_t>(rng.uniform(blocks.size()))];
        addr = net::Ipv4Addr((entry.block_index() << 8) |
                             static_cast<std::uint32_t>(rng.uniform(256)));
      } else {
        addr = net::Ipv4Addr(static_cast<std::uint32_t>(rng.uniform(std::uint64_t{1} << 32)));
      }
      if (binary) {
        serve::wire::Request frame;
        frame.verb = serve::wire::Verb::kLookup;
        frame.addr = addr;
        serve::wire::append_request(request, frame);
        serve::wire::append_response(expected,
                                     serve::wire::make_verdict_response(addr, index.lookup(addr)));
      } else {
        request += addr.to_string();
        request += '\n';
        expected += serve::format_verdict(addr, index.lookup(addr));
        expected += '\n';
      }
    }
    script.requests.push_back(std::move(request));
    script.expected.push_back(std::move(expected));
    done += batch;
  }
  return script;
}

int connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  const int enable = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const auto n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Send every batch, read every reply, compare byte-for-byte.  Returns
/// the number of mismatched batches (0 on a clean run, SIZE_MAX on a
/// transport failure).
std::size_t run_client(std::uint16_t port, const ClientScript& script,
                       std::atomic<std::uint64_t>& completed_queries) {
  const int fd = connect_loopback(port);
  if (fd < 0) return SIZE_MAX;
  std::size_t mismatches = 0;
  std::string reply;
  char chunk[64 * 1024];
  for (std::size_t b = 0; b < script.requests.size(); ++b) {
    if (!send_all(fd, script.requests[b])) {
      ::close(fd);
      return SIZE_MAX;
    }
    const std::string& expected = script.expected[b];
    reply.clear();
    while (reply.size() < expected.size()) {
      const auto n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        ::close(fd);
        return SIZE_MAX;
      }
      reply.append(chunk, static_cast<std::size_t>(n));
    }
    if (reply != expected) ++mismatches;
    completed_queries.fetch_add(kBatchQueries, std::memory_order_relaxed);
  }
  ::close(fd);
  return mismatches;
}

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct WireStage {
  double wall_ms = 0;
  double qps = 0;
  std::size_t bad_batches = 0;
  int failed_clients = 0;
  serve::ServerStats stats;
  std::vector<std::uint64_t> per_reactor;
  bool ok = false;
};

/// One byte-verified wire run: kClients pipelined clients against a
/// server with `reactors` event loops; with fire_reload a hot reload
/// lands once half the queries completed.
WireStage run_wire_stage(const char* snap_path, const std::vector<ClientScript>& scripts,
                         int reactors, bool fire_reload) {
  WireStage out;
  serve::ServerConfig config;
  config.snapshot_path = snap_path;
  config.port = 0;
  config.reactors = reactors;
  config.max_conns = kClients + 4;
  config.max_pending_bytes = 4 * 1024 * 1024;
  serve::QueryServer server(config);
  {
    const auto started = server.start();
    if (!started.ok()) {
      std::fprintf(stderr, "server start failed: %s\n", started.error().to_string().c_str());
      return out;
    }
  }
  std::thread reactor([&server] { server.run(); });

  const std::uint64_t total_queries =
      static_cast<std::uint64_t>(kClients) * queries_per_client();
  std::atomic<std::uint64_t> completed{0};
  std::vector<std::size_t> mismatches(kClients, 0);
  const double t0 = now_ms();
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      mismatches[static_cast<std::size_t>(c)] =
          run_client(server.port(), scripts[static_cast<std::size_t>(c)], completed);
    });
  }

  if (fire_reload) {
    // One hot reload mid-run (same file, epoch bump): throughput and
    // reply correctness must be unaffected on every reactor.
    while (completed.load(std::memory_order_relaxed) < total_queries / 2) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    server.request_reload();
  }

  for (auto& thread : clients) thread.join();
  out.wall_ms = now_ms() - t0;

  server.request_stop();
  reactor.join();

  for (const auto m : mismatches) {
    if (m == SIZE_MAX) {
      ++out.failed_clients;
    } else {
      out.bad_batches += m;
    }
  }
  out.stats = server.stats();
  out.per_reactor = server.reactor_connections();
  out.qps = 1e3 * static_cast<double>(total_queries) / out.wall_ms;
  out.ok = out.failed_clients == 0 && out.bad_batches == 0 &&
           out.stats.queries == total_queries &&
           out.stats.reloads == (fire_reload ? 1u : 0u) && out.stats.reload_failures == 0;
  return out;
}

}  // namespace

int main() {
  const auto snapshot = make_paper_scale_snapshot();
  const char* snap_path = "BENCH_serve_net.tmp.snap";
  {
    const auto written = serve::write_snapshot_file(snapshot, snap_path);
    if (!written.ok()) {
      std::fprintf(stderr, "snapshot write failed: %s\n",
                   written.error().to_string().c_str());
      return 1;
    }
  }
  // The oracle the clients check every reply byte against.
  const serve::TelescopeIndex index{serve::TelescopeSnapshot(snapshot)};

  std::vector<ClientScript> scripts;
  std::vector<ClientScript> bin_scripts;
  scripts.reserve(kClients);
  bin_scripts.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    scripts.push_back(make_script(index, 1000 + static_cast<std::uint64_t>(c),
                                  serve::WireProtocol::kLine));
    bin_scripts.push_back(make_script(index, 1000 + static_cast<std::uint64_t>(c),
                                      serve::WireProtocol::kBinary));
  }
  const std::uint64_t total_queries =
      static_cast<std::uint64_t>(kClients) * queries_per_client();
  const int reactors = multi_reactors();

  std::printf("== serve_net: %d clients x %zu queries over loopback (%zu blocks) ==\n",
              kClients, queries_per_client(), snapshot.blocks.size());

  // Stage A: the single-reactor protocol duel, best of kProtocolReps per
  // side (no reload — the baselines should measure the steady state).
  // Correctness failures in any rep are sticky via the aggregates below.
  std::size_t duel_bad_batches = 0;
  int duel_failed_clients = 0;
  bool duel_ok = true;
  const auto best_of = [&](const std::vector<ClientScript>& side) {
    WireStage best;
    for (int rep = 0; rep < (small_scale() ? 1 : kProtocolReps); ++rep) {
      WireStage stage = run_wire_stage(snap_path, side, 1, false);
      duel_bad_batches += stage.bad_batches;
      duel_failed_clients += stage.failed_clients;
      duel_ok = duel_ok && stage.ok;
      if (!best.ok || stage.qps > best.qps) best = std::move(stage);
    }
    return best;
  };
  const WireStage single = best_of(scripts);
  std::printf("  single reactor (line):   %llu queries in %.1f ms -> %.1f k lookups/s\n",
              static_cast<unsigned long long>(total_queries), single.wall_ms,
              single.qps / 1e3);
  const WireStage binary = best_of(bin_scripts);
  const double binary_over_line = binary.qps / std::max(1.0, single.qps);
  std::printf("  single reactor (binary): %llu queries in %.1f ms -> %.1f k lookups/s "
              "(%.2fx line)\n",
              static_cast<unsigned long long>(total_queries), binary.wall_ms,
              binary.qps / 1e3, binary_over_line);

  // Stage B: multi-reactor with a mid-run hot reload.
  const WireStage multi = run_wire_stage(snap_path, scripts, reactors, true);
  std::printf("  %d reactors:      %llu queries in %.1f ms -> %.1f k lookups/s "
              "(%.2fx single)\n",
              reactors, static_cast<unsigned long long>(total_queries), multi.wall_ms,
              multi.qps / 1e3, multi.qps / std::max(1.0, single.qps));
  std::printf("  multi stats: reloads %llu (failures %llu), queries %llu, drops %llu, "
              "mismatched batches %zu, failed clients %d, accepts per reactor [",
              static_cast<unsigned long long>(multi.stats.reloads),
              static_cast<unsigned long long>(multi.stats.reload_failures),
              static_cast<unsigned long long>(multi.stats.queries),
              static_cast<unsigned long long>(multi.stats.drops), multi.bad_batches,
              multi.failed_clients);
  for (std::size_t i = 0; i < multi.per_reactor.size(); ++i) {
    std::printf("%s%llu", i == 0 ? "" : " ",
                static_cast<unsigned long long>(multi.per_reactor[i]));
  }
  std::printf("]\n");

  // Stage C: stepped open-loop latency curve against a fresh multi-reactor
  // server.
  serve::ServerConfig serve_config;
  serve_config.snapshot_path = snap_path;
  serve_config.port = 0;
  serve_config.reactors = reactors;
  serve_config.max_conns = 64;
  serve_config.max_pending_bytes = 4 * 1024 * 1024;
  serve::QueryServer curve_server(serve_config);
  if (!curve_server.start().ok()) {
    std::fprintf(stderr, "curve server start failed\n");
    return 1;
  }
  std::thread curve_thread([&curve_server] { curve_server.run(); });

  serve::LoadgenConfig lg;
  lg.port = curve_server.port();
  lg.mode = serve::LoadMode::kOpen;
  lg.connections = small_scale() ? 2 : 4;
  lg.steps = small_scale() ? std::vector<std::uint64_t>{20'000, 60'000}
                           : std::vector<std::uint64_t>{200'000, 800'000, 2'000'000};
  lg.warmup_ms = small_scale() ? 100 : 200;
  lg.measure_ms = small_scale() ? 300 : 1000;
  lg.cooldown_ms = 100;
  lg.seed = 23;
  // One sweep per protocol, same seed: the address stream is identical, so
  // the two curves differ only in wire format.
  lg.proto = serve::WireProtocol::kLine;
  const auto curve = serve::run_loadgen(lg);
  auto lg_binary = lg;
  lg_binary.proto = serve::WireProtocol::kBinary;
  const auto bin_curve = serve::run_loadgen(lg_binary);
  curve_server.request_stop();
  curve_thread.join();
  std::remove(snap_path);
  if (!curve.ok() || !bin_curve.ok()) {
    const auto& error = curve.ok() ? bin_curve.error() : curve.error();
    std::fprintf(stderr, "loadgen stage failed: %s\n", error.to_string().c_str());
    return 1;
  }
  const auto print_curve = [](const char* proto, const std::vector<serve::StepResult>& steps) {
    for (const auto& step : steps) {
      std::printf("  loadgen %s step %llu: offered %.0f q/s, achieved %.0f q/s, "
                  "p50 %llu us, p99 %llu us\n",
                  proto, static_cast<unsigned long long>(step.target), step.offered_qps,
                  step.achieved_qps, static_cast<unsigned long long>(step.p50_us),
                  static_cast<unsigned long long>(step.p99_us));
    }
  };
  print_curve("line", curve.value());
  print_curve("binary", bin_curve.value());

  const double speedup = multi.qps / std::max(1.0, single.qps);
  std::ofstream json("BENCH_serve_net.json");
  json << "{\n"
       << "  \"meta\": ";
  benchx::write_meta_json(json);
  json << ",\n"
       << "  \"workload\": {\"clients\": " << kClients
       << ", \"queries_per_client\": " << queries_per_client()
       << ", \"blocks\": " << snapshot.blocks.size() << "},\n"
       << "  \"reactors\": " << reactors << ",\n"
       << "  \"single_reactor_qps\": " << single.qps << ",\n"
       << "  \"binary_single_qps\": " << binary.qps << ",\n"
       << "  \"binary_over_line\": " << binary_over_line << ",\n"
       << "  \"binary_over_line_pct\": " << static_cast<int>(binary_over_line * 100.0) << ",\n"
       << "  \"multi_reactor_qps\": " << multi.qps << ",\n"
       << "  \"multi_over_single\": " << speedup << ",\n"
       << "  \"wall_ms\": " << multi.wall_ms << ",\n"
       << "  \"aggregate_qps\": " << multi.qps << ",\n"
       << "  \"reloads\": " << multi.stats.reloads << ",\n"
       << "  \"server_queries\": " << multi.stats.queries << ",\n"
       << "  \"mismatched_batches\": " << multi.bad_batches + duel_bad_batches << ",\n"
       << "  \"failed_clients\": " << multi.failed_clients + duel_failed_clients << ",\n";
  const auto nest_curve = [&json](const char* key, const serve::LoadgenConfig& config,
                                  const std::vector<serve::StepResult>& steps,
                                  const char* trailer) {
    std::ostringstream lg_json;
    serve::write_loadgen_json(lg_json, config, steps);
    const std::string text = lg_json.str();
    // Re-indent the standalone document two spaces to nest it.
    std::string nested = std::string("  \"") + key + "\": ";
    for (const char c : text) {
      nested += c;
      if (c == '\n') nested += "  ";
    }
    while (!nested.empty() && (nested.back() == ' ' || nested.back() == '\n')) nested.pop_back();
    json << nested << trailer;
  };
  nest_curve("loadgen", lg, curve.value(), ",\n");
  nest_curve("loadgen_binary", lg_binary, bin_curve.value(), "\n");
  json << "}\n";
  std::printf("  wrote BENCH_serve_net.json\n");

  // Correctness is a hard failure; raw qps is hardware-dependent, so only
  // the protocol and multi/single ratio floors are enforced here (see
  // header caveat) — absolute floors live in the CI gate with known
  // hardware.
  if (!duel_ok || !multi.ok) {
    std::fprintf(stderr, "serve_net FAILED correctness checks\n");
    return 1;
  }
  for (const auto accepted : multi.per_reactor) {
    if (accepted == 0 && multi.per_reactor.size() <= static_cast<std::size_t>(kClients) / 2) {
      // With 8 clients over >=2 listeners every reactor should land at
      // least one accept; REUSEPORT hashing makes this overwhelmingly
      // likely, and a zero here usually means a listener never opened.
      std::fprintf(stderr, "serve_net FAILED: a reactor accepted no connections\n");
      return 1;
    }
  }
  if (multi.qps < kMultiFloorRatio * single.qps) {
    std::fprintf(stderr, "serve_net FAILED: multi-reactor qps %.0f below %.2fx single %.0f\n",
                 multi.qps, kMultiFloorRatio, single.qps);
    return 1;
  }
  return 0;
}
