// Loopback load test for the TCP query server (src/serve/server.hpp): a
// paper-scale snapshot is served on an ephemeral port and 8 client
// threads pump pipelined query batches over real sockets, with one hot
// reload fired mid-run.  Every reply byte is checked against a locally
// built TelescopeIndex, so the run measures throughput AND proves verdict
// continuity across the epoch swap (the reload re-serves the same file,
// so any mismatch is a server bug, not a data change).  main() writes
// BENCH_serve_net.json for trend tracking across PRs; the acceptance
// floor is 100k aggregate lookups/s.  MTSCOPE_BENCH_SCALE=small shrinks
// the workload for CI smoke runs.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "pipeline/inference.hpp"
#include "routing/special_purpose.hpp"
#include "serve/server.hpp"
#include "serve/snapshot.hpp"
#include "serve/telescope_index.hpp"
#include "util/rng.hpp"

using namespace mtscope;

namespace {

bool small_scale() {
  const char* scale = std::getenv("MTSCOPE_BENCH_SCALE");
  return scale != nullptr && std::strcmp(scale, "small") == 0;
}

constexpr int kClients = 8;
constexpr std::size_t kBatchQueries = 512;  // pipelining depth per client

std::size_t workload_flows() { return small_scale() ? 50'000 : 500'000; }
std::size_t queries_per_client() { return small_scale() ? 8'192 : 131'072; }

// Same 60.0.0.0/6 workload as micro_snapshot: ~223k classified /24s at
// full scale, the regime of the paper's meta-telescope map.
serve::TelescopeSnapshot make_paper_scale_snapshot() {
  util::Rng rng(23);
  std::vector<flow::FlowRecord> flows;
  flows.reserve(workload_flows());
  for (std::size_t i = 0; i < workload_flows(); ++i) {
    flow::FlowRecord r;
    r.key.src = net::Ipv4Addr(0x0a000000 + static_cast<std::uint32_t>(rng.uniform(1u << 16)));
    r.key.dst = net::Ipv4Addr((60u << 24) + static_cast<std::uint32_t>(rng.uniform(1u << 26)));
    r.key.dst_port = 23;
    r.key.proto = rng.chance(0.9) ? net::IpProto::kTcp : net::IpProto::kUdp;
    r.packets = 1 + rng.uniform(3);
    r.bytes = r.packets * (rng.chance(0.8) ? 40 : 1400);
    r.sampling_rate = 100;
    flows.push_back(r);
  }
  pipeline::VantageStats stats;
  stats.add_flows(flows, 100, 0);

  routing::Rib rib;
  for (std::uint32_t i = 0; i < 64; ++i) {
    rib.announce(net::Prefix(net::Ipv4Addr((60u << 24) + (i << 20)), 12),
                 net::AsNumber(65000 + i));
  }
  const auto registry = routing::SpecialPurposeRegistry::standard();
  const pipeline::InferenceEngine engine(pipeline::PipelineConfig{}, rib, registry);
  const auto result = engine.infer(stats);

  serve::RunMetadata meta;
  meta.seed = 23;
  meta.flows_ingested = flows.size();
  meta.created_unix_s = 1'700'000'000;
  meta.source = "bench serve_net 60.0.0.0/6";
  return serve::build_snapshot(result, rib, meta);
}

/// One client's whole conversation, precomputed: per-batch request bytes
/// and the exact reply bytes the server must produce.
struct ClientScript {
  std::vector<std::string> requests;
  std::vector<std::string> expected;
};

ClientScript make_script(const serve::TelescopeIndex& index, std::uint64_t seed) {
  util::Rng rng(seed);
  const auto& blocks = index.snapshot().blocks;
  ClientScript script;
  const std::size_t total = queries_per_client();
  for (std::size_t done = 0; done < total;) {
    const std::size_t batch = std::min(kBatchQueries, total - done);
    std::string request;
    std::string expected;
    for (std::size_t i = 0; i < batch; ++i) {
      // Even probes hit a known block, odd probes are uniform v4 (mostly
      // misses) — the same mix micro_snapshot times in-process.
      net::Ipv4Addr addr{0};
      if (!blocks.empty() && (i & 1u) == 0) {
        const auto& entry =
            blocks[static_cast<std::size_t>(rng.uniform(blocks.size()))];
        addr = net::Ipv4Addr((entry.block_index() << 8) |
                             static_cast<std::uint32_t>(rng.uniform(256)));
      } else {
        addr = net::Ipv4Addr(static_cast<std::uint32_t>(rng.uniform(std::uint64_t{1} << 32)));
      }
      request += addr.to_string();
      request += '\n';
      expected += serve::format_verdict(addr, index.lookup(addr));
      expected += '\n';
    }
    script.requests.push_back(std::move(request));
    script.expected.push_back(std::move(expected));
    done += batch;
  }
  return script;
}

int connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  const int enable = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const auto n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Send every batch, read every reply, compare byte-for-byte.  Returns
/// the number of mismatched batches (0 on a clean run, SIZE_MAX on a
/// transport failure).
std::size_t run_client(std::uint16_t port, const ClientScript& script,
                       std::atomic<std::uint64_t>& completed_queries) {
  const int fd = connect_loopback(port);
  if (fd < 0) return SIZE_MAX;
  std::size_t mismatches = 0;
  std::string reply;
  char chunk[64 * 1024];
  for (std::size_t b = 0; b < script.requests.size(); ++b) {
    if (!send_all(fd, script.requests[b])) {
      ::close(fd);
      return SIZE_MAX;
    }
    const std::string& expected = script.expected[b];
    reply.clear();
    while (reply.size() < expected.size()) {
      const auto n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        ::close(fd);
        return SIZE_MAX;
      }
      reply.append(chunk, static_cast<std::size_t>(n));
    }
    if (reply != expected) ++mismatches;
    completed_queries.fetch_add(kBatchQueries, std::memory_order_relaxed);
  }
  ::close(fd);
  return mismatches;
}

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main() {
  const auto snapshot = make_paper_scale_snapshot();
  const char* snap_path = "BENCH_serve_net.tmp.snap";
  {
    const auto written = serve::write_snapshot_file(snapshot, snap_path);
    if (!written.ok()) {
      std::fprintf(stderr, "snapshot write failed: %s\n",
                   written.error().to_string().c_str());
      return 1;
    }
  }
  // The oracle the clients check every reply byte against.
  const serve::TelescopeIndex index{serve::TelescopeSnapshot(snapshot)};

  serve::ServerConfig config;
  config.snapshot_path = snap_path;
  config.port = 0;
  config.max_conns = kClients + 4;
  config.max_pending_bytes = 4 * 1024 * 1024;
  serve::QueryServer server(config);
  {
    const auto started = server.start();
    if (!started.ok()) {
      std::fprintf(stderr, "server start failed: %s\n",
                   started.error().to_string().c_str());
      return 1;
    }
  }
  std::thread reactor([&server] { server.run(); });

  std::vector<ClientScript> scripts;
  scripts.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    scripts.push_back(make_script(index, 1000 + static_cast<std::uint64_t>(c)));
  }
  const std::uint64_t total_queries =
      static_cast<std::uint64_t>(kClients) * queries_per_client();

  std::atomic<std::uint64_t> completed{0};
  std::vector<std::size_t> mismatches(kClients, 0);
  const double t0 = now_ms();
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      mismatches[static_cast<std::size_t>(c)] =
          run_client(server.port(), scripts[static_cast<std::size_t>(c)], completed);
    });
  }

  // Fire one hot reload mid-run (same file, epoch 1 -> 2): throughput and
  // reply correctness must be unaffected.
  while (completed.load(std::memory_order_relaxed) < total_queries / 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.request_reload();

  for (auto& thread : clients) thread.join();
  const double wall_ms = now_ms() - t0;

  server.request_stop();
  reactor.join();
  std::remove(snap_path);

  std::size_t bad_batches = 0;
  int failed_clients = 0;
  for (const auto m : mismatches) {
    if (m == SIZE_MAX) {
      ++failed_clients;
    } else {
      bad_batches += m;
    }
  }
  const auto stats = server.stats();
  const double qps = 1e3 * static_cast<double>(total_queries) / wall_ms;

  std::printf("== serve_net: %d clients x %zu queries over loopback (%zu blocks) ==\n",
              kClients, queries_per_client(), snapshot.blocks.size());
  std::printf("  %llu queries in %.1f ms -> %.1f k lookups/s aggregate\n",
              static_cast<unsigned long long>(total_queries), wall_ms, qps / 1e3);
  std::printf("  reloads %llu (failures %llu), server queries %llu, drops %llu, "
              "mismatched batches %zu, failed clients %d\n",
              static_cast<unsigned long long>(stats.reloads),
              static_cast<unsigned long long>(stats.reload_failures),
              static_cast<unsigned long long>(stats.queries),
              static_cast<unsigned long long>(stats.drops), bad_batches, failed_clients);

  std::ofstream json("BENCH_serve_net.json");
  json << "{\n"
       << "  \"workload\": {\"clients\": " << kClients
       << ", \"queries_per_client\": " << queries_per_client()
       << ", \"blocks\": " << snapshot.blocks.size() << "},\n"
       << "  \"wall_ms\": " << wall_ms << ",\n"
       << "  \"aggregate_qps\": " << qps << ",\n"
       << "  \"reloads\": " << stats.reloads << ",\n"
       << "  \"server_queries\": " << stats.queries << ",\n"
       << "  \"mismatched_batches\": " << bad_batches << ",\n"
       << "  \"failed_clients\": " << failed_clients << "\n"
       << "}\n";
  std::printf("  wrote BENCH_serve_net.json\n");

  // Correctness is a hard failure; raw qps is hardware-dependent and only
  // recorded.  The server must have answered every query exactly once.
  if (failed_clients > 0 || bad_batches > 0 || stats.queries != total_queries ||
      stats.reloads != 1 || stats.reload_failures != 0) {
    std::fprintf(stderr, "serve_net FAILED correctness checks\n");
    return 1;
  }
  return 0;
}
