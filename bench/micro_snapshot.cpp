// Micro-benchmarks for the snapshot + serving layer at paper scale: a
// 500k-flow workload spread over 60.0.0.0/6 (~223k classified /24s, the
// regime of the paper's meta-telescope map) is inferred once, then the
// serve path is timed end to end — serialize, parse, file round-trip,
// index build, and single-threaded lookup throughput on a mixed
// hit/miss probe stream.  main() writes BENCH_snapshot.json for trend
// tracking across PRs, then runs the google-benchmark suite.
// MTSCOPE_BENCH_SCALE=small shrinks the workload for smoke runs.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <vector>

#include "bench_common.hpp"
#include "pipeline/inference.hpp"
#include "routing/special_purpose.hpp"
#include "serve/snapshot.hpp"
#include "serve/telescope_index.hpp"
#include "util/rng.hpp"

using namespace mtscope;

namespace {

bool small_scale() {
  const char* scale = std::getenv("MTSCOPE_BENCH_SCALE");
  return scale != nullptr && std::strcmp(scale, "small") == 0;
}

std::size_t workload_flows() { return small_scale() ? 50'000 : 500'000; }

std::vector<flow::FlowRecord> make_flows(std::size_t count, std::uint64_t seed = 23) {
  util::Rng rng(seed);
  std::vector<flow::FlowRecord> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    flow::FlowRecord r;
    r.key.src = net::Ipv4Addr(0x0a000000 + static_cast<std::uint32_t>(rng.uniform(1u << 16)));
    // Destinations over a /6 (~262k candidate /24s): the paper's regime of
    // a large sparse map, which is also the worst case for the lookup
    // directory (many buckets, few entries each).
    r.key.dst = net::Ipv4Addr((60u << 24) + static_cast<std::uint32_t>(rng.uniform(1u << 26)));
    r.key.dst_port = 23;
    r.key.proto = rng.chance(0.9) ? net::IpProto::kTcp : net::IpProto::kUdp;
    r.packets = 1 + rng.uniform(3);
    r.bytes = r.packets * (rng.chance(0.8) ? 40 : 1400);
    r.sampling_rate = 100;
    out.push_back(r);
  }
  return out;
}

/// 64 /12 announcements carve up 60.0.0.0/6, so the snapshot's prefix
/// table and per-block prefix ids are exercised, not degenerate.
routing::Rib make_rib() {
  routing::Rib rib;
  for (std::uint32_t i = 0; i < 64; ++i) {
    rib.announce(net::Prefix(net::Ipv4Addr((60u << 24) + (i << 20)), 12),
                 net::AsNumber(65000 + i));
  }
  return rib;
}

serve::TelescopeSnapshot make_paper_scale_snapshot() {
  const auto flows = make_flows(workload_flows());
  pipeline::VantageStats stats;
  stats.add_flows(flows, 100, 0);

  const routing::Rib rib = make_rib();
  const auto registry = routing::SpecialPurposeRegistry::standard();
  const pipeline::InferenceEngine engine(pipeline::PipelineConfig{}, rib, registry);
  const auto result = engine.infer(stats);

  serve::RunMetadata meta;
  meta.seed = 23;
  meta.flows_ingested = flows.size();
  meta.created_unix_s = 1'700'000'000;
  meta.source = "bench 60.0.0.0/6";
  return serve::build_snapshot(result, rib, meta);
}

const serve::TelescopeSnapshot& shared_snapshot() {
  static const serve::TelescopeSnapshot snapshot = make_paper_scale_snapshot();
  return snapshot;
}

/// Deterministic probe stream: even probes hit a known block (random host
/// byte), odd probes are uniform over the whole v4 space (mostly misses).
std::vector<net::Ipv4Addr> make_probes(const serve::TelescopeSnapshot& snapshot,
                                       std::size_t count) {
  util::Rng rng(97);
  std::vector<net::Ipv4Addr> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (!snapshot.blocks.empty() && (i & 1u) == 0) {
      const auto& entry =
          snapshot.blocks[static_cast<std::size_t>(rng.uniform(snapshot.blocks.size()))];
      out.push_back(net::Ipv4Addr((entry.block_index() << 8) |
                                  static_cast<std::uint32_t>(rng.uniform(256))));
    } else {
      out.push_back(
          net::Ipv4Addr(static_cast<std::uint32_t>(rng.uniform(std::uint64_t{1} << 32))));
    }
  }
  return out;
}

// --- google-benchmark suite ------------------------------------------------

void BM_SnapshotSerialize(benchmark::State& state) {
  const auto& snapshot = shared_snapshot();
  for (auto _ : state) {
    benchmark::DoNotOptimize(serve::serialize_snapshot(snapshot));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(snapshot.blocks.size()));
}
BENCHMARK(BM_SnapshotSerialize);

void BM_SnapshotParse(benchmark::State& state) {
  const auto bytes = serve::serialize_snapshot(shared_snapshot());
  for (auto _ : state) {
    auto parsed = serve::parse_snapshot(bytes);
    benchmark::DoNotOptimize(parsed.ok());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_SnapshotParse);

void BM_IndexBuild(benchmark::State& state) {
  const auto& snapshot = shared_snapshot();
  for (auto _ : state) {
    serve::TelescopeIndex index{serve::TelescopeSnapshot(snapshot)};
    benchmark::DoNotOptimize(index.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(snapshot.blocks.size()));
}
BENCHMARK(BM_IndexBuild);

void BM_IndexClassify(benchmark::State& state) {
  const serve::TelescopeIndex index{serve::TelescopeSnapshot(shared_snapshot())};
  const auto probes = make_probes(index.snapshot(), 1u << 16);
  std::size_t i = 0;
  std::uint64_t hits = 0;
  for (auto _ : state) {
    hits += index.classify(probes[i]).has_value() ? 1 : 0;
    i = (i + 1) & (probes.size() - 1);
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IndexClassify);

void BM_IndexLookupFullVerdict(benchmark::State& state) {
  const serve::TelescopeIndex index{serve::TelescopeSnapshot(shared_snapshot())};
  const auto probes = make_probes(index.snapshot(), 1u << 16);
  std::size_t i = 0;
  std::uint64_t hits = 0;
  for (auto _ : state) {
    hits += index.lookup(probes[i]).has_value() ? 1 : 0;
    i = (i + 1) & (probes.size() - 1);
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IndexLookupFullVerdict);

// --- BENCH_snapshot.json ---------------------------------------------------

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

template <typename F>
double best_of_ms(int reps, F&& run) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    const double t0 = now_ms();
    run();
    best = std::min(best, now_ms() - t0);
  }
  return best;
}

void write_snapshot_report() {
  const auto& snapshot = shared_snapshot();
  const auto bytes = serve::serialize_snapshot(snapshot);

  const double serialize_ms = best_of_ms(3, [&] {
    benchmark::DoNotOptimize(serve::serialize_snapshot(snapshot));
  });
  const double parse_ms = best_of_ms(3, [&] {
    auto parsed = serve::parse_snapshot(bytes);
    benchmark::DoNotOptimize(parsed.ok());
  });

  const char* path = "BENCH_snapshot.tmp.snap";
  const double write_ms = best_of_ms(3, [&] {
    benchmark::DoNotOptimize(serve::write_snapshot_file(snapshot, path).ok());
  });
  const double load_ms = best_of_ms(3, [&] {
    auto index = serve::TelescopeIndex::load_file(path);
    benchmark::DoNotOptimize(index.ok());
  });
  std::remove(path);

  const double index_build_ms = best_of_ms(3, [&] {
    serve::TelescopeIndex index{serve::TelescopeSnapshot(snapshot)};
    benchmark::DoNotOptimize(index.size());
  });

  const serve::TelescopeIndex index{serve::TelescopeSnapshot(snapshot)};
  const std::size_t probe_count = small_scale() ? 1'000'000 : 10'000'000;
  const auto probes = make_probes(snapshot, probe_count);
  std::uint64_t hits = 0;
  const double lookup_ms = best_of_ms(3, [&] {
    hits = 0;
    for (const auto addr : probes) {
      hits += index.classify(addr).has_value() ? 1 : 0;
    }
    benchmark::DoNotOptimize(hits);
  });
  const double qps = 1e3 * static_cast<double>(probe_count) / lookup_ms;
  const double hit_rate = static_cast<double>(hits) / static_cast<double>(probe_count);

  std::printf("== snapshot + serving (%zu blocks, %zu prefixes, %zu bytes on disk) ==\n",
              snapshot.blocks.size(), snapshot.prefixes.size(), bytes.size());
  std::printf("  serialize %8.2f ms   parse %8.2f ms\n", serialize_ms, parse_ms);
  std::printf("  write     %8.2f ms   load+index %8.2f ms (build alone %.2f ms)\n",
              write_ms, load_ms, index_build_ms);
  std::printf("  classify  %zu probes in %.1f ms -> %.1f M lookups/s (hit-rate %.1f%%, "
              "index %.1f KiB)\n",
              probe_count, lookup_ms, qps / 1e6, hit_rate * 100.0,
              static_cast<double>(index.memory_bytes()) / 1024.0);

  std::ofstream json("BENCH_snapshot.json");
  json << "{\n"
       << "  \"meta\": ";
  benchx::write_meta_json(json);
  json << ",\n"
       << "  \"workload\": {\"flows\": " << workload_flows()
       << ", \"blocks\": " << snapshot.blocks.size()
       << ", \"prefixes\": " << snapshot.prefixes.size()
       << ", \"file_bytes\": " << bytes.size() << "},\n"
       << "  \"serialize_ms\": " << serialize_ms << ",\n"
       << "  \"parse_ms\": " << parse_ms << ",\n"
       << "  \"write_ms\": " << write_ms << ",\n"
       << "  \"load_and_index_ms\": " << load_ms << ",\n"
       << "  \"index_build_ms\": " << index_build_ms << ",\n"
       << "  \"index_memory_bytes\": " << index.memory_bytes() << ",\n"
       << "  \"lookup\": {\"probes\": " << probe_count << ", \"hit_rate\": " << hit_rate
       << ", \"single_thread_qps\": " << qps << "}\n"
       << "}\n";
  std::printf("  wrote BENCH_snapshot.json\n");
}

}  // namespace

int main(int argc, char** argv) {
  write_snapshot_report();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
