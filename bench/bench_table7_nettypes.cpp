// Table 7: meta-telescope /24s per network type and continent (union data
// set = all vantage points).
#include <array>
#include <map>

#include "bench_common.hpp"
#include "pipeline/spoof_tolerance.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace mtscope;

int main() {
  benchx::print_header(
      "Table 7 — meta-telescope /24s per type and continent (all sites)",
      "All: 318k = ISP 158k > Education 79k > Enterprise 57k > Data Center 24k; "
      "NA largest region; SA/AF weakest (no nearby vantage points)");

  const sim::Simulation& simulation = benchx::shared_simulation();
  const auto pfx2as = simulation.plan().make_pfx2as();
  const auto all = benchx::all_ixp_indices(simulation);
  const int day0[] = {0};
  const auto stats = pipeline::collect_stats(simulation, all, day0);
  const std::uint64_t tolerance =
      pipeline::compute_spoof_tolerance(stats, simulation.plan().unrouted_slash8s());
  const auto result = benchx::run_inference(simulation, stats, tolerance);

  // counts[continent][type]; extra column for untyped.
  std::map<geo::Continent, std::array<std::uint64_t, 5>> counts;
  std::array<std::uint64_t, 5> totals{};
  result.dark.for_each([&](net::Block24 block) {
    const geo::Continent continent = simulation.plan().geodb().continent_of(block);
    std::size_t type_index = 4;
    if (const auto asn = pfx2as.resolve(block)) {
      if (const auto type = simulation.plan().nettypes().resolve(*asn)) {
        type_index = static_cast<std::size_t>(*type);
      }
    }
    ++counts[continent][type_index];
    ++totals[type_index];
  });

  util::TextTable table({"World Region", "Total", "ISP", "Enterprise", "Education",
                         "Data Center"});
  const auto row_total = [](const std::array<std::uint64_t, 5>& row) {
    std::uint64_t sum = 0;
    for (std::uint64_t v : row) sum += v;
    return sum;
  };
  std::uint64_t grand = 0;
  for (std::uint64_t v : totals) grand += v;
  table.add_row({"All", util::with_commas(grand), util::with_commas(totals[0]),
                 util::with_commas(totals[1]), util::with_commas(totals[2]),
                 util::with_commas(totals[3])});
  table.add_separator();
  for (const geo::Continent c : geo::kAllContinents) {
    const auto it = counts.find(c);
    const std::array<std::uint64_t, 5> row =
        it == counts.end() ? std::array<std::uint64_t, 5>{} : it->second;
    table.add_row({std::string(geo::continent_name(c)), util::with_commas(row_total(row)),
                   util::with_commas(row[0]), util::with_commas(row[1]),
                   util::with_commas(row[2]), util::with_commas(row[3])});
  }
  std::printf("%s", table.render().c_str());

  benchx::print_comparison("ISP space dominates", "158k of 318k (50%)",
                           util::percent(static_cast<double>(totals[0]) /
                                         std::max<std::uint64_t>(1, grand)));
  benchx::print_comparison(
      "Data Center space is the smallest share", "24k (7.7%)",
      util::percent(static_cast<double>(totals[3]) / std::max<std::uint64_t>(1, grand)));
  const std::uint64_t na = counts.count(geo::Continent::kNorthAmerica)
                               ? row_total(counts[geo::Continent::kNorthAmerica])
                               : 0;
  benchx::print_comparison("North America hosts the largest share",
                           "119.9k of 318k (38%)",
                           util::percent(static_cast<double>(na) /
                                         std::max<std::uint64_t>(1, grand)));
  return 0;
}
