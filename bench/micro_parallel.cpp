// Serial vs sharded-parallel collect+infer throughput on a simulated
// multi-IXP week (the paper's deployment shape: 14 vantage points x 7
// days).  Verifies bit-identical output while timing, prints a comparison
// table with the per-stage split (sim / parse / insert / merge from
// pipeline::CollectProfile), and writes BENCH_parallel.json so later PRs
// can track the speedup trajectory and a regression localizes to a stage
// instead of one collect lump.
//
// Thread grid: 1 (the batched engine vs the record-at-a-time reference —
// isolates the parse/insert refactor with no pool in the picture), then
// 2 and 4.  Counts beyond the host's core budget only measure scheduler
// thrash, so the old 8-thread row is gone; the recorded meta block says
// how many cores the numbers were taken on and cmake/parallel_gate.cmake
// only enforces a speedup floor when that context supports one.
//
// Every configuration is timed best-of-N: the container's CPU budget
// jitters by ~10% run to run, and the minimum is the standard estimator
// for "what the code costs" under external interference.
//
// MTSCOPE_BENCH_SCALE=small shrinks the workload (2 days) for quick
// iteration, matching the convention of the other bench binaries.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <vector>

#include "bench_common.hpp"
#include "obs/metrics.hpp"
#include "pipeline/collector.hpp"
#include "pipeline/inference.hpp"
#include "pipeline/parallel.hpp"
#include "routing/special_purpose.hpp"
#include "sim/simulation.hpp"

using namespace mtscope;

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Measurement {
  unsigned threads = 1;
  unsigned shards = 1;
  double collect_ms = 0.0;
  double infer_ms = 0.0;
  pipeline::CollectProfile stages;  // from the best (kept) repetition

  [[nodiscard]] double total_ms() const { return collect_ms + infer_ms; }
};

bool identical(const pipeline::InferenceResult& a, const pipeline::InferenceResult& b) {
  return a.funnel == b.funnel && a.unclean == b.unclean && a.gray == b.gray &&
         a.dark == b.dark;
}

void print_row(const char* label, const Measurement& m, double serial_total_ms,
               bool show_speedup, const char* verdict) {
  std::printf(
      "  %-19s collect %8.1f ms  [sim %6.1f parse %5.1f insert %6.1f merge %5.1f]"
      "  infer %6.1f ms",
      label, m.collect_ms, m.stages.sim_ms, m.stages.parse_ms, m.stages.insert_ms,
      m.stages.merge_ms, m.infer_ms);
  if (show_speedup) std::printf("  speedup %5.2fx", serial_total_ms / m.total_ms());
  std::printf("  %s\n", verdict);
}

}  // namespace

int main() {
  // The paper's deployment shape at test-universe scale: the full 14-IXP
  // fleet over one week of the tiny universe.
  sim::SimConfig config = sim::SimConfig::tiny(42);
  config.ixps = sim::SimConfig::default_ixps();
  const char* scale = std::getenv("MTSCOPE_BENCH_SCALE");
  const bool small = scale != nullptr && std::strcmp(scale, "small") == 0;
  const int day_count = small ? 2 : 7;
  // Best-of-N beats the shared-container timing noise (±10% run to run);
  // the small CI scale affords more reps than the full 7-day universe.
  const int reps = small ? 5 : 3;

  const sim::Simulation simulation(config);
  const auto ixps = pipeline::all_ixps(simulation);
  std::vector<int> days;
  for (int d = 0; d < day_count; ++d) days.push_back(d);

  const auto registry = routing::SpecialPurposeRegistry::standard();
  pipeline::PipelineConfig pipeline_config;
  pipeline_config.volume_scale = simulation.config().volume_scale;
  const pipeline::InferenceEngine engine(pipeline_config, simulation.plan().rib(),
                                         registry);

  std::printf(
      "== micro_parallel: %zu IXPs x %d days, serial vs sharded parallel "
      "(best of %d) ==\n",
      ixps.size(), day_count, reps);

  // Serial reference: record-at-a-time, one store — the oracle the
  // differential tests pin every batched configuration against.
  Measurement serial;
  pipeline::VantageStats serial_stats;
  pipeline::InferenceResult serial_result;
  for (int rep = 0; rep < reps; ++rep) {
    double t0 = now_ms();
    auto stats = pipeline::collect_stats(simulation, ixps, days);
    const double collect_ms = now_ms() - t0;
    t0 = now_ms();
    auto result = engine.infer(stats);
    const double infer_ms = now_ms() - t0;
    if (rep == 0 || collect_ms + infer_ms < serial.total_ms()) {
      serial.collect_ms = collect_ms;
      serial.infer_ms = infer_ms;
    }
    serial_stats = std::move(stats);
    serial_result = std::move(result);
  }
  std::printf("  %-19s collect %8.1f ms  infer %6.1f ms  (dark=%llu blocks=%zu)\n",
              "serial", serial.collect_ms, serial.infer_ms,
              static_cast<unsigned long long>(serial_result.dark.size()),
              serial_stats.blocks().size());

  std::vector<Measurement> parallel;
  bool all_identical = true;
  for (const unsigned threads : {1u, 2u, 4u}) {
    Measurement m;
    m.threads = threads;
    m.shards = 16;
    bool ok = true;
    for (int rep = 0; rep < reps; ++rep) {
      pipeline::CollectProfile profile;
      const pipeline::CollectOptions options{m.threads, m.shards, nullptr, 0, &profile};
      double t0 = now_ms();
      const auto stats = pipeline::collect_stats(simulation, ixps, days, options);
      const double collect_ms = now_ms() - t0;
      t0 = now_ms();
      const auto result = pipeline::parallel_infer(engine, stats, threads);
      const double infer_ms = now_ms() - t0;
      ok &= identical(result, serial_result) &&
            stats.blocks().size() == serial_stats.blocks().size();
      if (rep == 0 || collect_ms + infer_ms < m.total_ms()) {
        m.collect_ms = collect_ms;
        m.infer_ms = infer_ms;
        m.stages = profile;
      }
    }
    all_identical &= ok;
    char label[64];
    std::snprintf(label, sizeof(label), "%u thread%s/%u shards", m.threads,
                  m.threads == 1 ? " " : "s", m.shards);
    print_row(label, m, serial.total_ms(), true, ok ? "bit-identical" : "MISMATCH");
    parallel.push_back(m);
  }

  // One more instrumented run: same workload with a metrics registry
  // attached, still bit-identical, and its snapshot rides along in the
  // JSON so the report carries funnel counts and stage timings.
  obs::MetricsRegistry metrics;
  const pipeline::CollectOptions instrumented_options{4, 16, &metrics};
  double t0 = now_ms();
  const auto instrumented_stats =
      pipeline::collect_stats(simulation, ixps, days, instrumented_options);
  const auto instrumented_result =
      pipeline::parallel_infer(engine, instrumented_stats, 4, &metrics);
  const double instrumented_ms = now_ms() - t0;
  const bool instrumented_ok = identical(instrumented_result, serial_result);
  all_identical &= instrumented_ok;
  std::printf("  instrumented 4/16   collect+infer %9.1f ms  %s\n", instrumented_ms,
              instrumented_ok ? "bit-identical" : "MISMATCH");

  std::ofstream json("BENCH_parallel.json");
  json << "{\n"
       << "  \"meta\": ";
  benchx::write_meta_json(json);
  json << ",\n"
       << "  \"workload\": {\"ixps\": " << ixps.size() << ", \"days\": " << day_count
       << ", \"blocks\": " << serial_stats.blocks().size()
       << ", \"flows\": " << serial_stats.flows_ingested() << "},\n"
       << "  \"store\": {\"memory_bytes\": " << serial_stats.blocks().memory_bytes()
       << ", \"load_factor\": " << serial_stats.blocks().load_factor()
       << ", \"arena_spills\": " << serial_stats.blocks().arena_spills() << "},\n"
       << "  \"serial\": {\"collect_ms\": " << serial.collect_ms
       << ", \"infer_ms\": " << serial.infer_ms << "},\n"
       << "  \"parallel\": [\n";
  for (std::size_t i = 0; i < parallel.size(); ++i) {
    const Measurement& m = parallel[i];
    json << "    {\"threads\": " << m.threads << ", \"shards\": " << m.shards
         << ", \"collect_ms\": " << m.collect_ms << ", \"infer_ms\": " << m.infer_ms
         << ", \"speedup\": " << serial.total_ms() / m.total_ms()
         << ",\n     \"stages\": {\"sim_ms\": " << m.stages.sim_ms
         << ", \"parse_ms\": " << m.stages.parse_ms
         << ", \"insert_ms\": " << m.stages.insert_ms
         << ", \"merge_ms\": " << m.stages.merge_ms << "}}"
         << (i + 1 < parallel.size() ? ",\n" : "\n");
  }
  json << "  ],\n"
       << "  \"metrics\": ";
  metrics.write_json(json, 2);
  json << ",\n"
       << "  \"bit_identical\": " << (all_identical ? "true" : "false") << "\n"
       << "}\n";
  std::printf("  wrote BENCH_parallel.json\n");

  return all_identical ? 0 : 1;
}
