// Serial vs sharded-parallel collect+infer throughput on a simulated
// multi-IXP week (the paper's deployment shape: 14 vantage points x 7
// days).  Verifies bit-identical output while timing, prints a comparison
// table, and writes BENCH_parallel.json so later PRs can track the
// speedup trajectory.
//
// MTSCOPE_BENCH_SCALE=small shrinks the workload (2 days) for quick
// iteration, matching the convention of the other bench binaries.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <vector>

#include "obs/metrics.hpp"
#include "pipeline/collector.hpp"
#include "pipeline/inference.hpp"
#include "pipeline/parallel.hpp"
#include "routing/special_purpose.hpp"
#include "sim/simulation.hpp"

using namespace mtscope;

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Measurement {
  unsigned threads = 1;
  unsigned shards = 1;
  double collect_ms = 0.0;
  double infer_ms = 0.0;

  [[nodiscard]] double total_ms() const { return collect_ms + infer_ms; }
};

bool identical(const pipeline::InferenceResult& a, const pipeline::InferenceResult& b) {
  return a.funnel == b.funnel && a.unclean == b.unclean && a.gray == b.gray &&
         a.dark == b.dark;
}

}  // namespace

int main() {
  // The paper's deployment shape at test-universe scale: the full 14-IXP
  // fleet over one week of the tiny universe.
  sim::SimConfig config = sim::SimConfig::tiny(42);
  config.ixps = sim::SimConfig::default_ixps();
  const char* scale = std::getenv("MTSCOPE_BENCH_SCALE");
  const int day_count = (scale != nullptr && std::strcmp(scale, "small") == 0) ? 2 : 7;

  const sim::Simulation simulation(config);
  const auto ixps = pipeline::all_ixps(simulation);
  std::vector<int> days;
  for (int d = 0; d < day_count; ++d) days.push_back(d);

  const auto registry = routing::SpecialPurposeRegistry::standard();
  pipeline::PipelineConfig pipeline_config;
  pipeline_config.volume_scale = simulation.config().volume_scale;
  const pipeline::InferenceEngine engine(pipeline_config, simulation.plan().rib(),
                                         registry);

  std::printf("== micro_parallel: %zu IXPs x %d days, serial vs sharded parallel ==\n",
              ixps.size(), day_count);

  // Serial baseline.
  Measurement serial;
  double t0 = now_ms();
  const auto serial_stats = pipeline::collect_stats(simulation, ixps, days);
  serial.collect_ms = now_ms() - t0;
  t0 = now_ms();
  const auto serial_result = engine.infer(serial_stats);
  serial.infer_ms = now_ms() - t0;
  std::printf("  serial              collect %9.1f ms  infer %7.1f ms  (dark=%llu blocks=%zu)\n",
              serial.collect_ms, serial.infer_ms,
              static_cast<unsigned long long>(serial_result.dark.size()),
              serial_stats.blocks().size());

  std::vector<Measurement> parallel;
  bool all_identical = true;
  for (const unsigned threads : {2u, 4u, 8u}) {
    Measurement m;
    m.threads = threads;
    m.shards = 16;
    const pipeline::CollectOptions options{m.threads, m.shards};
    t0 = now_ms();
    const auto stats = pipeline::collect_stats(simulation, ixps, days, options);
    m.collect_ms = now_ms() - t0;
    t0 = now_ms();
    const auto result = pipeline::parallel_infer(engine, stats, threads);
    m.infer_ms = now_ms() - t0;

    const bool ok = identical(result, serial_result);
    all_identical &= ok;
    std::printf("  %u threads/%2u shards collect %9.1f ms  infer %7.1f ms  speedup %5.2fx  %s\n",
                m.threads, m.shards, m.collect_ms, m.infer_ms,
                serial.total_ms() / m.total_ms(), ok ? "bit-identical" : "MISMATCH");
    parallel.push_back(m);
  }

  // One more instrumented run: same workload with a metrics registry
  // attached, still bit-identical, and its snapshot rides along in the
  // JSON so the report carries funnel counts and stage timings.
  obs::MetricsRegistry metrics;
  const pipeline::CollectOptions instrumented_options{4, 16, &metrics};
  t0 = now_ms();
  const auto instrumented_stats =
      pipeline::collect_stats(simulation, ixps, days, instrumented_options);
  const auto instrumented_result =
      pipeline::parallel_infer(engine, instrumented_stats, 4, &metrics);
  const double instrumented_ms = now_ms() - t0;
  const bool instrumented_ok = identical(instrumented_result, serial_result);
  all_identical &= instrumented_ok;
  std::printf("  instrumented 4/16   collect+infer %9.1f ms  %s\n", instrumented_ms,
              instrumented_ok ? "bit-identical" : "MISMATCH");

  std::ofstream json("BENCH_parallel.json");
  json << "{\n"
       << "  \"workload\": {\"ixps\": " << ixps.size() << ", \"days\": " << day_count
       << ", \"blocks\": " << serial_stats.blocks().size()
       << ", \"flows\": " << serial_stats.flows_ingested() << "},\n"
       << "  \"store\": {\"memory_bytes\": " << serial_stats.blocks().memory_bytes()
       << ", \"load_factor\": " << serial_stats.blocks().load_factor()
       << ", \"arena_spills\": " << serial_stats.blocks().arena_spills() << "},\n"
       << "  \"serial\": {\"collect_ms\": " << serial.collect_ms
       << ", \"infer_ms\": " << serial.infer_ms << "},\n"
       << "  \"parallel\": [\n";
  for (std::size_t i = 0; i < parallel.size(); ++i) {
    const Measurement& m = parallel[i];
    json << "    {\"threads\": " << m.threads << ", \"shards\": " << m.shards
         << ", \"collect_ms\": " << m.collect_ms << ", \"infer_ms\": " << m.infer_ms
         << ", \"speedup\": " << serial.total_ms() / m.total_ms() << "}"
         << (i + 1 < parallel.size() ? ",\n" : "\n");
  }
  json << "  ],\n"
       << "  \"metrics\": ";
  metrics.write_json(json, 2);
  json << ",\n"
       << "  \"bit_identical\": " << (all_identical ? "true" : "false") << "\n"
       << "}\n";
  std::printf("  wrote BENCH_parallel.json\n");

  return all_identical ? 0 : 1;
}
