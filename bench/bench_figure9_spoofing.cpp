// Figure 9: the effect of spoofing — inferred prefixes over cumulative days
// with and without the unrouted-space spoofing tolerance, for CE1, NA1 and
// all sites.  Also sweeps the tolerance percentile (ablation).
#include "bench_common.hpp"
#include "pipeline/spoof_tolerance.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace mtscope;

int main() {
  benchx::print_header(
      "Figure 9 — spoofing vs cumulative observation window",
      "All sites: 350k (1d) collapses to 4k (7d) without tolerance; with tolerance "
      "~800k -> ~400k (halves instead of vanishing); NA1 least affected");

  const sim::Simulation& simulation = benchx::shared_simulation();
  const std::size_t ce1 = simulation.ixp_index("CE1");
  const std::size_t na1 = simulation.ixp_index("NA1");
  const auto all = benchx::all_ixp_indices(simulation);

  struct Series {
    std::string name;
    std::vector<std::size_t> ixps;
    pipeline::VantageStats stats;
    std::vector<std::uint64_t> strict;
    std::vector<std::uint64_t> tolerant;
    std::vector<std::uint64_t> tolerance_values;
  };
  std::vector<Series> series;
  series.push_back({"CE1", {ce1}, pipeline::VantageStats(simulation.plan().universe_mask()),
                    {}, {}, {}});
  series.push_back({"NA1", {na1}, pipeline::VantageStats(simulation.plan().universe_mask()),
                    {}, {}, {}});
  series.push_back({"All", all, pipeline::VantageStats(simulation.plan().universe_mask()),
                    {}, {}, {}});

  for (int day = 0; day < 7; ++day) {
    for (Series& s : series) {
      for (const std::size_t i : s.ixps) {
        const auto data = simulation.run_ixp_day(i, day);
        s.stats.add_flows(data.flows, simulation.ixps()[i].sampling_rate(), day);
      }
      const std::uint64_t tolerance =
          pipeline::compute_spoof_tolerance(s.stats, simulation.plan().unrouted_slash8s());
      s.tolerance_values.push_back(tolerance);
      s.strict.push_back(benchx::run_inference(simulation, s.stats, 0).dark.size());
      s.tolerant.push_back(
          benchx::run_inference(simulation, s.stats, tolerance).dark.size());
    }
  }

  util::TextTable table({"Window", "CE1 strict", "CE1 +tol", "NA1 strict", "NA1 +tol",
                         "All strict", "All +tol", "tol(All)"});
  for (int day = 0; day < 7; ++day) {
    table.add_row({"d0-d" + std::to_string(day), util::with_commas(series[0].strict[day]),
                   util::with_commas(series[0].tolerant[day]),
                   util::with_commas(series[1].strict[day]),
                   util::with_commas(series[1].tolerant[day]),
                   util::with_commas(series[2].strict[day]),
                   util::with_commas(series[2].tolerant[day]),
                   std::to_string(series[2].tolerance_values[day])});
  }
  std::printf("%s", table.render().c_str());

  const auto& all_series = series[2];
  const double strict_collapse = static_cast<double>(all_series.strict[6]) /
                                 std::max<std::uint64_t>(1, all_series.strict[0]);
  const double tolerant_ratio = static_cast<double>(all_series.tolerant[6]) /
                                std::max<std::uint64_t>(1, all_series.tolerant[0]);
  benchx::print_comparison("All strict: 7d / 1d survival", "4k/350k = 1.1%",
                           util::percent(strict_collapse));
  benchx::print_comparison("All +tolerance: 7d / 1d survival", "~400k/800k = 50%",
                           util::percent(tolerant_ratio));
  benchx::print_comparison("tolerance recovers day-1 inference",
                           "800k vs 350k (2.3x)",
                           util::fixed(static_cast<double>(all_series.tolerant[0]) /
                                           std::max<std::uint64_t>(1, all_series.strict[0]), 2) +
                               "x");
  benchx::print_comparison("7-day tolerance grows to a few packets", "up to 4/day",
                           std::to_string(all_series.tolerance_values[6]) + " (total)");

  // Ablation: tolerance percentile sweep on the all-sites week.
  std::printf("\n--- ablation: tolerance percentile (All, 7d) ---\n");
  for (const double pct : {0.999, 0.9999, 0.99999}) {
    pipeline::SpoofToleranceConfig config;
    config.percentile = pct;
    const std::uint64_t tol = pipeline::compute_spoof_tolerance(
        all_series.stats, simulation.plan().unrouted_slash8s(), config);
    const auto dark = benchx::run_inference(simulation, all_series.stats, tol).dark.size();
    std::printf("  percentile %.5f -> tolerance %llu pkts -> %s dark\n", pct,
                static_cast<unsigned long long>(tol), util::with_commas(dark).c_str());
  }
  return 0;
}
