// Table 4: meta-telescope coverage of the three operational telescopes, for
// one day vs the full week, at CE1 alone vs all vantage points.
#include "bench_common.hpp"
#include "pipeline/evaluation.hpp"
#include "sim/traffic_model.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace mtscope;

namespace {

pipeline::TelescopeCoverage coverage_for(const sim::Simulation& simulation,
                                         const pipeline::VantageStats& stats, std::size_t t,
                                         int days_in_window) {
  // Per-day spoofing tolerance, derived from the unrouted /8s as in §7.2.
  const std::uint64_t tolerance =
      pipeline::compute_spoof_tolerance(stats, simulation.plan().unrouted_slash8s());
  const auto result = benchx::run_inference(simulation, stats, tolerance);

  const sim::TelescopeInfo& telescope = simulation.plan().telescopes()[t];
  const sim::BlockTraits traits(simulation.config().seed);
  const double lease = telescope.spec.dynamic_active_fraction;
  // A block counts as dark over the window if it was never leased out.
  const auto dark_on_window = [&](net::Block24 block) {
    if (lease <= 0.0) return true;
    for (int d = 0; d < days_in_window; ++d) {
      if (traits.leased_today(block, d, lease)) return false;
    }
    return true;
  };
  return pipeline::evaluate_telescope_coverage(result.dark, telescope, dark_on_window);
}

}  // namespace

int main() {
  benchx::print_header(
      "Table 4 — meta-telescope coverage of operational telescopes",
      "TUS1: CE1 0 (invisible), All 23.5% 1d -> 77% 7d | TEU1: 38 of 265 unused (14%) 1d | "
      "TEU2: 0 at 1d (volume filter), 7/8 at 7d");

  const sim::Simulation& simulation = benchx::shared_simulation();
  const std::size_t ce1[] = {simulation.ixp_index("CE1")};
  const auto all = benchx::all_ixp_indices(simulation);
  const int one_day[] = {0};
  const int week[] = {0, 1, 2, 3, 4, 5, 6};

  const auto stats_ce1_1d = pipeline::collect_stats(simulation, ce1, one_day);
  const auto stats_all_1d = pipeline::collect_stats(simulation, all, one_day);
  const auto stats_ce1_7d = pipeline::collect_stats(simulation, ce1, week);
  const auto stats_all_7d = pipeline::collect_stats(simulation, all, week);

  util::TextTable table({"Code", "Size (/24s)", "Dark in window", "CE1 1d", "All 1d",
                         "CE1 7d", "All 7d"});

  double tus1_all_1d_rate = 0;
  double tus1_all_7d_rate = 0;
  std::uint64_t tus1_ce1 = 0;
  std::uint64_t teu2_all_1d = 0;
  std::uint64_t teu2_all_7d = 0;

  for (std::size_t t = 0; t < simulation.plan().telescopes().size(); ++t) {
    const auto c_ce1_1d = coverage_for(simulation, stats_ce1_1d, t, 1);
    const auto c_all_1d = coverage_for(simulation, stats_all_1d, t, 1);
    const auto c_ce1_7d = coverage_for(simulation, stats_ce1_7d, t, 7);
    const auto c_all_7d = coverage_for(simulation, stats_all_7d, t, 7);

    table.add_row({c_all_7d.code, util::with_commas(c_all_1d.size),
                   util::with_commas(c_all_7d.actually_dark),
                   util::with_commas(c_ce1_1d.inferred), util::with_commas(c_all_1d.inferred),
                   util::with_commas(c_ce1_7d.inferred), util::with_commas(c_all_7d.inferred)});

    if (c_all_1d.code == "TUS1") {
      tus1_all_1d_rate = c_all_1d.coverage_of_dark();
      tus1_all_7d_rate = c_all_7d.coverage_of_dark();
      tus1_ce1 = c_ce1_7d.inferred;
    }
    if (c_all_1d.code == "TEU2") {
      teu2_all_1d = c_all_1d.inferred;
      teu2_all_7d = c_all_7d.inferred;
    }
  }
  std::printf("%s", table.render().c_str());

  benchx::print_comparison("TUS1 invisible at CE1 (even 7d)", "0",
                           util::with_commas(tus1_ce1));
  benchx::print_comparison("TUS1 all-IXP coverage 1d", "23.5%",
                           util::percent(tus1_all_1d_rate));
  benchx::print_comparison("TUS1 all-IXP coverage 7d", "76.7%",
                           util::percent(tus1_all_7d_rate));
  benchx::print_comparison("TEU2 day-0: suppressed by volume filter", "0 of 8",
                           util::with_commas(teu2_all_1d) + " of 8");
  benchx::print_comparison("TEU2 week: mostly recovered", "7 of 8",
                           util::with_commas(teu2_all_7d) + " of 8");

  // Ablation (DESIGN.md §5): sensitivity of telescope coverage to the
  // volume threshold.  The paper picked 1.7M pkts/day conservatively and
  // notes it "might not necessarily be the ideal choice" — TEU2 is the
  // casualty.  Sweep it on the all-sites week.
  std::printf("\n--- ablation: volume threshold (all sites, 7d) ---\n");
  static const routing::SpecialPurposeRegistry registry =
      routing::SpecialPurposeRegistry::standard();
  const std::uint64_t tolerance7 =
      pipeline::compute_spoof_tolerance(stats_all_7d, simulation.plan().unrouted_slash8s());
  for (const double cap : {1.0e6, 1.7e6, 2.5e6, 5.0e6}) {
    pipeline::PipelineConfig config;
    config.volume_scale = simulation.config().volume_scale;
    config.spoof_tolerance_pkts = tolerance7;
    config.max_rx_pkts_per_day = cap;
    const pipeline::InferenceEngine engine(config, simulation.plan().rib(), registry);
    const auto result = engine.infer(stats_all_7d);
    const auto tus1 = pipeline::evaluate_telescope_coverage(
        result.dark, simulation.plan().telescopes()[0], nullptr);
    const auto teu2 = pipeline::evaluate_telescope_coverage(
        result.dark, simulation.plan().telescopes()[2], nullptr);
    const auto eval = pipeline::evaluate_against_ground_truth(result.dark, simulation.plan());
    std::printf("  cap %.1fM pkts/day: dark=%s  TUS1=%s  TEU2=%llu/8  FP=%s\n", cap / 1e6,
                util::with_commas(result.dark.size()).c_str(),
                util::percent(tus1.coverage_of_dark()).c_str(),
                static_cast<unsigned long long>(teu2.inferred),
                util::percent(eval.false_positive_rate()).c_str());
  }
  return 0;
}
