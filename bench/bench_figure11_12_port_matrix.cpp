// Figures 11, 12 (and Appendix 18-20): destination-port activity toward the
// inferred meta-telescope, split by world region and by network type — the
// "bean plot" matrices.
#include "analysis/ports.hpp"
#include "bench_common.hpp"
#include "pipeline/spoof_tolerance.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace mtscope;

int main() {
  benchx::print_header(
      "Figures 11 & 12 (+18-20) — port activity by region and network type",
      "23 dominates everywhere except OC/AF; 37215+52869 are AF-specific (Satori); 80 and "
      "5038 are data-center-hot; 8080 the top web port");

  const sim::Simulation& simulation = benchx::shared_simulation();
  const auto pfx2as = simulation.plan().make_pfx2as();
  const auto all = benchx::all_ixp_indices(simulation);
  const int day0[] = {0};
  const auto stats = pipeline::collect_stats(simulation, all, day0);
  const std::uint64_t tolerance =
      pipeline::compute_spoof_tolerance(stats, simulation.plan().unrouted_slash8s());
  const auto result = benchx::run_inference(simulation, stats, tolerance);

  analysis::PortActivity activity(simulation.plan().geodb(), simulation.plan().nettypes(),
                                  pfx2as);
  for (const std::size_t i : all) {
    const auto data = simulation.run_ixp_day(i, 0);
    activity.add_flows(data.flows, result.dark);
  }

  std::printf("--- Figure 11: top-16 ports x world region (within-region share) ---\n");
  const auto region_ports = activity.joint_top_ports_by_region(16);
  const auto region_ports16 =
      std::vector<std::uint16_t>(region_ports.begin(),
                                 region_ports.begin() + std::min<std::size_t>(16,
                                                                              region_ports.size()));
  std::printf("%s\n", activity.render_region_matrix(region_ports16).c_str());

  std::printf("--- Figure 12: top-12 ports x network type ---\n");
  const auto type_ports = activity.joint_top_ports_by_type(12);
  const auto type_ports12 = std::vector<std::uint16_t>(
      type_ports.begin(), type_ports.begin() + std::min<std::size_t>(12, type_ports.size()));
  std::printf("%s\n", activity.render_type_matrix(type_ports12).c_str());

  std::printf("--- Figure 18: region shares relative to ALL meta-telescope traffic ---\n");
  for (const geo::Continent c : geo::kAllContinents) {
    std::printf("  %-4s total share: %s\n", std::string(geo::continent_code(c)).c_str(),
                util::percent(static_cast<double>(activity.total(c)) /
                              std::max<std::uint64_t>(1, activity.grand_total()))
                    .c_str());
  }
  std::printf("\n");

  // Headline shape checks.
  const auto share = [&](geo::Continent c, std::uint16_t port) {
    return activity.share(c, port);
  };
  benchx::print_comparison(
      "port 23 dominates in EU", "top port",
      util::percent(share(geo::Continent::kEurope, 23)) + " of EU traffic");
  benchx::print_comparison(
      "37215 is AF-specific", "AF >> EU",
      util::percent(share(geo::Continent::kAfrica, 37215)) + " vs " +
          util::percent(share(geo::Continent::kEurope, 37215)) +
          (share(geo::Continent::kAfrica, 37215) >
                   4 * share(geo::Continent::kEurope, 37215)
               ? " (matches)"
               : " (mismatch)"));
  benchx::print_comparison(
      "52869 (Satori) appears mainly in AF", "AF-only in top lists",
      util::percent(share(geo::Continent::kAfrica, 52869)) + " vs EU " +
          util::percent(share(geo::Continent::kEurope, 52869)));
  benchx::print_comparison(
      "port 80 hotter in data centers than ISPs", "DC > ISP",
      util::percent(activity.share(geo::NetType::kDataCenter, 80)) + " vs " +
          util::percent(activity.share(geo::NetType::kIsp, 80)) +
          (activity.share(geo::NetType::kDataCenter, 80) >
                   activity.share(geo::NetType::kIsp, 80)
               ? " (matches)"
               : " (mismatch)"));
  benchx::print_comparison(
      "5038 hotter in data centers", "DC > ISP",
      util::percent(activity.share(geo::NetType::kDataCenter, 5038)) + " vs " +
          util::percent(activity.share(geo::NetType::kIsp, 5038)));
  return 0;
}
