// Micro-benchmarks for the exporter path: flow-table aggregation throughput
// and wire-codec costs.
#include <benchmark/benchmark.h>

#include "flow/flow_table.hpp"
#include "net/headers.hpp"
#include "net/hilbert.hpp"
#include "util/rng.hpp"

using namespace mtscope;

namespace {

std::vector<flow::PacketMeta> make_packets(std::size_t count, std::size_t distinct_tuples) {
  util::Rng rng(31);
  std::vector<flow::PacketMeta> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    flow::PacketMeta p;
    p.timestamp_us = i * 100;
    const std::uint64_t tuple = rng.uniform(distinct_tuples);
    p.src = net::Ipv4Addr(static_cast<std::uint32_t>(0x0a000000 + tuple));
    p.dst = net::Ipv4Addr(static_cast<std::uint32_t>(0x3c000000 + tuple * 7));
    p.src_port = static_cast<std::uint16_t>(1024 + (tuple & 0xfff));
    p.dst_port = 23;
    p.ip_length = 40;
    p.tcp_flags = net::TcpFlags::kSyn;
    out.push_back(p);
  }
  return out;
}

void BM_FlowTableAdd(benchmark::State& state) {
  const auto packets = make_packets(100'000, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    flow::FlowTable table;
    for (const auto& p : packets) table.add(p);
    table.flush();
    benchmark::DoNotOptimize(table.flows_exported());
  }
  state.SetItemsProcessed(state.iterations() * packets.size());
}
BENCHMARK(BM_FlowTableAdd)->Arg(1000)->Arg(100'000);  // heavy-aggregation vs one-per-flow

void BM_PacketSynthesize(benchmark::State& state) {
  util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::synthesize_packet(
        net::Ipv4Addr(static_cast<std::uint32_t>(rng.next())),
        net::Ipv4Addr(static_cast<std::uint32_t>(rng.next())), net::IpProto::kTcp, 1234, 23,
        net::TcpFlags::kSyn, 40));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PacketSynthesize);

void BM_PacketParse(benchmark::State& state) {
  const auto wire = net::synthesize_packet(net::Ipv4Addr(0x01020304), net::Ipv4Addr(0x05060708),
                                           net::IpProto::kTcp, 1234, 23, net::TcpFlags::kSyn,
                                           48);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::parse_packet(wire));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(wire.size()));
}
BENCHMARK(BM_PacketParse);

void BM_HilbertD2XY(benchmark::State& state) {
  std::uint64_t d = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::hilbert_d2xy(8, d));
    d = (d + 9973) & 0xffff;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HilbertD2XY);

}  // namespace

BENCHMARK_MAIN();
