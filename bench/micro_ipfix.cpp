// Micro-benchmarks for the IPFIX wire codec.
#include <benchmark/benchmark.h>

#include "flow/ipfix.hpp"
#include "util/rng.hpp"

using namespace mtscope;

namespace {

std::vector<flow::FlowRecord> make_records(std::size_t count) {
  util::Rng rng(17);
  std::vector<flow::FlowRecord> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    flow::FlowRecord r;
    r.key.src = net::Ipv4Addr(static_cast<std::uint32_t>(rng.next()));
    r.key.dst = net::Ipv4Addr(static_cast<std::uint32_t>(rng.next()));
    r.key.src_port = static_cast<std::uint16_t>(rng.uniform(65536));
    r.key.dst_port = 23;
    r.key.proto = net::IpProto::kTcp;
    r.packets = 1 + rng.uniform(5);
    r.bytes = r.packets * 40;
    r.first_us = i;
    r.last_us = i + 1;
    r.sampling_rate = 100;
    out.push_back(r);
  }
  return out;
}

void BM_IpfixEncode(benchmark::State& state) {
  const auto records = make_records(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    flow::IpfixEncoder encoder;
    benchmark::DoNotOptimize(encoder.encode(records, 0));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IpfixEncode)->Arg(100)->Arg(10'000);

void BM_IpfixRoundTrip(benchmark::State& state) {
  const auto records = make_records(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    flow::IpfixEncoder encoder;
    flow::IpfixDecoder decoder;
    for (const auto& message : encoder.encode(records, 0)) {
      auto fed = decoder.feed(message);
      benchmark::DoNotOptimize(fed.ok());
    }
    benchmark::DoNotOptimize(decoder.drain());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IpfixRoundTrip)->Arg(100)->Arg(10'000);

}  // namespace

BENCHMARK_MAIN();
