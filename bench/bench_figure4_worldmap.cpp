// Figure 4 (and Appendix Figures 13-15): geographic distribution of the
// meta-telescope, rendered as per-country tables (log-scale bars stand in
// for the paper's choropleth shading) for CE1, NA1 and all sites.
#include "analysis/world_map.hpp"
#include "bench_common.hpp"
#include "pipeline/spoof_tolerance.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace mtscope;

int main() {
  benchx::print_header(
      "Figure 4 (+13-15) — world distribution of meta-telescope prefixes",
      "US first, China second; ~200 countries covered; coverage gaps in central Africa");

  const sim::Simulation& simulation = benchx::shared_simulation();
  const auto pfx2as = simulation.plan().make_pfx2as();

  const auto summarize = [&](std::span<const std::size_t> ixps) {
    const int day0[] = {0};
    const auto stats = pipeline::collect_stats(simulation, ixps, day0);
    const std::uint64_t tolerance =
        pipeline::compute_spoof_tolerance(stats, simulation.plan().unrouted_slash8s());
    const auto result = benchx::run_inference(simulation, stats, tolerance);
    return analysis::summarize_geography(result.dark, simulation.plan().geodb(), pfx2as);
  };

  const std::size_t ce1[] = {simulation.ixp_index("CE1")};
  const std::size_t na1[] = {simulation.ixp_index("NA1")};
  const auto all = benchx::all_ixp_indices(simulation);

  std::printf("--- CE1 only (Figure 13) ---\n%s\n",
              analysis::render_world_table(summarize(ce1), 12).c_str());
  std::printf("--- NA1 only (Figure 14) ---\n%s\n",
              analysis::render_world_table(summarize(na1), 12).c_str());

  const auto all_summary = summarize(all);
  std::printf("--- All sites (Figures 4, 15) ---\n%s\n",
              analysis::render_world_table(all_summary, 20).c_str());

  benchx::print_comparison("top country", "US",
                           all_summary.by_country.empty() ? "-"
                                                          : all_summary.by_country[0].country);
  benchx::print_comparison(
      "second country", "CN",
      all_summary.by_country.size() > 1 ? all_summary.by_country[1].country : "-");
  benchx::print_comparison("countries covered", "194",
                           util::with_commas(all_summary.distinct_countries));
  return 0;
}
