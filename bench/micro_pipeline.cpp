// Micro-benchmarks for the inference pipeline itself: stats ingestion and
// the per-block classification pass.
#include <benchmark/benchmark.h>

#include "obs/metrics.hpp"
#include "pipeline/inference.hpp"
#include "routing/special_purpose.hpp"
#include "util/rng.hpp"

using namespace mtscope;

namespace {

std::vector<flow::FlowRecord> make_flows(std::size_t count) {
  util::Rng rng(23);
  std::vector<flow::FlowRecord> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    flow::FlowRecord r;
    r.key.src = net::Ipv4Addr(0x0a000000 + static_cast<std::uint32_t>(rng.uniform(1u << 16)));
    // Destinations spread over a /8 so the stats map holds ~65k blocks.
    r.key.dst = net::Ipv4Addr((60u << 24) + static_cast<std::uint32_t>(rng.uniform(1u << 24)));
    r.key.dst_port = 23;
    r.key.proto = rng.chance(0.9) ? net::IpProto::kTcp : net::IpProto::kUdp;
    r.packets = 1 + rng.uniform(3);
    r.bytes = r.packets * (rng.chance(0.8) ? 40 : 1400);
    r.sampling_rate = 100;
    out.push_back(r);
  }
  return out;
}

void BM_VantageStatsIngest(benchmark::State& state) {
  const auto flows = make_flows(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    pipeline::VantageStats stats;
    stats.add_flows(flows, 100, 0);
    benchmark::DoNotOptimize(stats.blocks().size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_VantageStatsIngest)->Arg(10'000)->Arg(500'000);

void BM_InferenceClassify(benchmark::State& state) {
  const auto flows = make_flows(static_cast<std::size_t>(state.range(0)));
  pipeline::VantageStats stats;
  stats.add_flows(flows, 100, 0);

  routing::Rib rib;
  rib.announce(*net::Prefix::parse("60.0.0.0/8"), net::AsNumber(1));
  const auto registry = routing::SpecialPurposeRegistry::standard();
  pipeline::PipelineConfig config;
  const pipeline::InferenceEngine engine(config, rib, registry);

  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.infer(stats));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(stats.blocks().size()));
}
BENCHMARK(BM_InferenceClassify)->Arg(10'000)->Arg(500'000);

// Same workload with a metrics registry attached — the delta against
// BM_InferenceClassify is the cost of the instrumented funnel (per-stage
// clock reads + counter recording).  The uninstrumented path above is the
// one the <2% overhead budget applies to.
void BM_InferenceClassifyInstrumented(benchmark::State& state) {
  const auto flows = make_flows(static_cast<std::size_t>(state.range(0)));
  pipeline::VantageStats stats;
  stats.add_flows(flows, 100, 0);

  routing::Rib rib;
  rib.announce(*net::Prefix::parse("60.0.0.0/8"), net::AsNumber(1));
  const auto registry = routing::SpecialPurposeRegistry::standard();
  pipeline::PipelineConfig config;
  const pipeline::InferenceEngine engine(config, rib, registry);

  for (auto _ : state) {
    obs::MetricsRegistry metrics;
    benchmark::DoNotOptimize(engine.infer(stats, &metrics));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(stats.blocks().size()));
}
BENCHMARK(BM_InferenceClassifyInstrumented)->Arg(10'000)->Arg(500'000);

void BM_StatsMerge(benchmark::State& state) {
  const auto flows_a = make_flows(100'000);
  const auto flows_b = make_flows(100'000);
  pipeline::VantageStats a;
  a.add_flows(flows_a, 100, 0);
  pipeline::VantageStats b;
  b.add_flows(flows_b, 100, 1);
  for (auto _ : state) {
    pipeline::VantageStats merged = a;
    merged.merge(b);
    benchmark::DoNotOptimize(merged.day_count());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StatsMerge);

}  // namespace

BENCHMARK_MAIN();
