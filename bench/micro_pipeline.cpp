// Micro-benchmarks for the inference pipeline itself: stats ingestion, the
// per-block classification pass, and stats merge — each measured on the
// columnar BlockStatsStore path and on an in-bench reconstruction of the
// map-backed storage it replaced (node-based unordered_map + heap vector
// of per-IP records + linear rx_ip probe).  main() times both paths
// head-to-head and writes BENCH_store.json with throughput and
// bytes-per-block before/after, then runs the google-benchmark suite.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <unordered_map>
#include <vector>

#include "bench_common.hpp"
#include "obs/metrics.hpp"
#include "pipeline/inference.hpp"
#include "routing/special_purpose.hpp"
#include "util/rng.hpp"

using namespace mtscope;

namespace {

std::vector<flow::FlowRecord> make_flows(std::size_t count, std::uint64_t seed = 23) {
  util::Rng rng(seed);
  std::vector<flow::FlowRecord> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    flow::FlowRecord r;
    r.key.src = net::Ipv4Addr(0x0a000000 + static_cast<std::uint32_t>(rng.uniform(1u << 16)));
    // Destinations spread over a /6 (~262k candidate /24s), matching the
    // paper's regime: a large gray population where most blocks see only a
    // handful of sampled addresses.
    r.key.dst = net::Ipv4Addr((60u << 24) + static_cast<std::uint32_t>(rng.uniform(1u << 26)));
    r.key.dst_port = 23;
    r.key.proto = rng.chance(0.9) ? net::IpProto::kTcp : net::IpProto::kUdp;
    r.packets = 1 + rng.uniform(3);
    r.bytes = r.packets * (rng.chance(0.8) ? 40 : 1400);
    r.sampling_rate = 100;
    out.push_back(r);
  }
  return out;
}

// --- the pre-refactor storage layer, reconstructed as the baseline --------
// Node-based map of per-block structs, each with a separately heap-
// allocated vector of per-IP records found by linear scan — exactly what
// pipeline::VantageStats used before BlockStatsStore.

struct MapBlockObservation {
  std::vector<pipeline::IpRxStats> rx_ips;
  std::uint64_t rx_packets = 0;
  std::uint64_t rx_tcp_packets = 0;
  std::uint64_t rx_tcp_bytes = 0;
  std::uint64_t rx_est_packets = 0;
  std::uint64_t tx_packets = 0;
  std::uint64_t tx_host_bits[4] = {0, 0, 0, 0};

  pipeline::IpRxStats& rx_ip(std::uint8_t host) {
    for (pipeline::IpRxStats& ip : rx_ips) {
      if (ip.host == host) return ip;
    }
    rx_ips.push_back(pipeline::IpRxStats{host, 0, 0, 0});
    return rx_ips.back();
  }

  void merge(const MapBlockObservation& other) {
    for (const pipeline::IpRxStats& theirs : other.rx_ips) {
      pipeline::IpRxStats& mine = rx_ip(theirs.host);
      mine.packets += theirs.packets;
      mine.tcp_packets += theirs.tcp_packets;
      mine.tcp_bytes += theirs.tcp_bytes;
    }
    rx_packets += other.rx_packets;
    rx_tcp_packets += other.rx_tcp_packets;
    rx_tcp_bytes += other.rx_tcp_bytes;
    rx_est_packets += other.rx_est_packets;
    tx_packets += other.tx_packets;
    for (int w = 0; w < 4; ++w) tx_host_bits[w] |= other.tx_host_bits[w];
  }
};

struct MapStats {
  std::unordered_map<net::Block24, MapBlockObservation> blocks;

  void add_flows(std::span<const flow::FlowRecord> flows, std::uint32_t rate) {
    for (const flow::FlowRecord& r : flows) {
      MapBlockObservation& dst = blocks[net::Block24::containing(r.key.dst)];
      dst.rx_packets += r.packets;
      dst.rx_est_packets += r.packets * rate;
      pipeline::IpRxStats& ip =
          dst.rx_ip(static_cast<std::uint8_t>(r.key.dst.value() & 0xff));
      ip.packets += static_cast<std::uint32_t>(r.packets);
      if (r.key.proto == net::IpProto::kTcp) {
        dst.rx_tcp_packets += r.packets;
        dst.rx_tcp_bytes += r.bytes;
        ip.tcp_packets += static_cast<std::uint32_t>(r.packets);
        ip.tcp_bytes += r.bytes;
      }
      MapBlockObservation& src = blocks[net::Block24::containing(r.key.src)];
      src.tx_packets += r.packets;
      const auto host = static_cast<std::uint8_t>(r.key.src.value() & 0xff);
      src.tx_host_bits[host >> 6] |= std::uint64_t{1} << (host & 63);
    }
  }

  void merge(const MapStats& other) {
    for (const auto& [block, obs] : other.blocks) blocks[block].merge(obs);
  }

  // Heap footprint estimate: bucket array + one node per entry (next
  // pointer + pair, plus a malloc header) + each block's rx_ips heap
  // allocation.  Deliberately charitable to the map — allocator slack
  // beyond the 16-byte header is not counted.
  [[nodiscard]] std::size_t memory_bytes() const {
    constexpr std::size_t kMallocHeader = 16;
    constexpr std::size_t kNodeBytes =
        sizeof(void*) + sizeof(std::pair<const net::Block24, MapBlockObservation>);
    std::size_t total = blocks.bucket_count() * sizeof(void*) +
                        blocks.size() * (kNodeBytes + kMallocHeader);
    for (const auto& [block, obs] : blocks) {
      if (obs.rx_ips.capacity() > 0) {
        total += obs.rx_ips.capacity() * sizeof(pipeline::IpRxStats) + kMallocHeader;
      }
    }
    return total;
  }
};

// --- google-benchmark suite ------------------------------------------------

void BM_StatsAddFlows(benchmark::State& state) {
  const auto flows = make_flows(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    pipeline::VantageStats stats;
    stats.add_flows(flows, 100, 0);
    benchmark::DoNotOptimize(stats.blocks().size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StatsAddFlows)->Arg(10'000)->Arg(500'000);

void BM_StatsAddFlows_MapBaseline(benchmark::State& state) {
  const auto flows = make_flows(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    MapStats stats;
    stats.add_flows(flows, 100);
    benchmark::DoNotOptimize(stats.blocks.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StatsAddFlows_MapBaseline)->Arg(10'000)->Arg(500'000);

void BM_InferenceClassify(benchmark::State& state) {
  const auto flows = make_flows(static_cast<std::size_t>(state.range(0)));
  pipeline::VantageStats stats;
  stats.add_flows(flows, 100, 0);

  routing::Rib rib;
  rib.announce(*net::Prefix::parse("60.0.0.0/6"), net::AsNumber(1));
  const auto registry = routing::SpecialPurposeRegistry::standard();
  pipeline::PipelineConfig config;
  const pipeline::InferenceEngine engine(config, rib, registry);

  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.infer(stats));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(stats.blocks().size()));
}
BENCHMARK(BM_InferenceClassify)->Arg(10'000)->Arg(500'000);

// Same workload with a metrics registry attached — the delta against
// BM_InferenceClassify is the cost of the instrumented funnel (per-stage
// clock reads + counter recording).  The uninstrumented path above is the
// one the <2% overhead budget applies to.
void BM_InferenceClassifyInstrumented(benchmark::State& state) {
  const auto flows = make_flows(static_cast<std::size_t>(state.range(0)));
  pipeline::VantageStats stats;
  stats.add_flows(flows, 100, 0);

  routing::Rib rib;
  rib.announce(*net::Prefix::parse("60.0.0.0/6"), net::AsNumber(1));
  const auto registry = routing::SpecialPurposeRegistry::standard();
  pipeline::PipelineConfig config;
  const pipeline::InferenceEngine engine(config, rib, registry);

  for (auto _ : state) {
    obs::MetricsRegistry metrics;
    benchmark::DoNotOptimize(engine.infer(stats, &metrics));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(stats.blocks().size()));
}
BENCHMARK(BM_InferenceClassifyInstrumented)->Arg(10'000)->Arg(500'000);

void BM_StatsMerge(benchmark::State& state) {
  const auto flows_a = make_flows(100'000);
  const auto flows_b = make_flows(100'000, 29);
  pipeline::VantageStats a;
  a.add_flows(flows_a, 100, 0);
  pipeline::VantageStats b;
  b.add_flows(flows_b, 100, 1);
  for (auto _ : state) {
    pipeline::VantageStats merged = a;
    merged.merge(b);
    benchmark::DoNotOptimize(merged.day_count());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StatsMerge);

void BM_StatsMerge_MapBaseline(benchmark::State& state) {
  const auto flows_a = make_flows(100'000);
  const auto flows_b = make_flows(100'000, 29);
  MapStats a;
  a.add_flows(flows_a, 100);
  MapStats b;
  b.add_flows(flows_b, 100);
  for (auto _ : state) {
    MapStats merged = a;
    merged.merge(b);
    benchmark::DoNotOptimize(merged.blocks.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StatsMerge_MapBaseline);

// --- head-to-head comparison + BENCH_store.json ---------------------------

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

template <typename F>
double best_of_ms(int reps, F&& run) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    const double t0 = now_ms();
    run();
    best = std::min(best, now_ms() - t0);
  }
  return best;
}

void write_store_report() {
  constexpr std::size_t kFlows = 500'000;
  const auto flows = make_flows(kFlows);
  const auto flows_b = make_flows(kFlows / 5, 29);

  const double store_ingest_ms = best_of_ms(3, [&] {
    pipeline::VantageStats stats;
    stats.add_flows(flows, 100, 0);
    benchmark::DoNotOptimize(stats.blocks().size());
  });
  const double map_ingest_ms = best_of_ms(3, [&] {
    MapStats stats;
    stats.add_flows(flows, 100);
    benchmark::DoNotOptimize(stats.blocks.size());
  });

  pipeline::VantageStats store_a;
  store_a.add_flows(flows, 100, 0);
  pipeline::VantageStats store_b;
  store_b.add_flows(flows_b, 100, 1);
  MapStats map_a;
  map_a.add_flows(flows, 100);
  MapStats map_b;
  map_b.add_flows(flows_b, 100);

  const double store_merge_ms = best_of_ms(3, [&] {
    pipeline::VantageStats merged = store_a;
    merged.merge(store_b);
    benchmark::DoNotOptimize(merged.blocks().size());
  });
  const double map_merge_ms = best_of_ms(3, [&] {
    MapStats merged = map_a;
    merged.merge(map_b);
    benchmark::DoNotOptimize(merged.blocks.size());
  });

  const std::size_t blocks = store_a.blocks().size();
  const double store_bpb =
      static_cast<double>(store_a.blocks().memory_bytes()) / static_cast<double>(blocks);
  const double map_bpb =
      static_cast<double>(map_a.memory_bytes()) / static_cast<double>(map_a.blocks.size());
  const double ingest_speedup = map_ingest_ms / store_ingest_ms;
  const double merge_speedup = map_merge_ms / store_merge_ms;

  std::printf("== BlockStatsStore vs map baseline (%zu flows, %zu blocks) ==\n", kFlows,
              blocks);
  std::printf("  add_flows  store %8.1f ms   map %8.1f ms   speedup %.2fx\n",
              store_ingest_ms, map_ingest_ms, ingest_speedup);
  std::printf("  merge      store %8.1f ms   map %8.1f ms   speedup %.2fx\n",
              store_merge_ms, map_merge_ms, merge_speedup);
  std::printf("  bytes/blk  store %8.1f      map %8.1f      reduction %.1f%%\n", store_bpb,
              map_bpb, 100.0 * (1.0 - store_bpb / map_bpb));
  std::printf("  store: load_factor %.2f, arena_spills %llu, arena_wasted_ips %llu\n",
              store_a.blocks().load_factor(),
              static_cast<unsigned long long>(store_a.blocks().arena_spills()),
              static_cast<unsigned long long>(store_a.blocks().arena_wasted_ips()));

  std::ofstream json("BENCH_store.json");
  json << "{\n"
       << "  \"meta\": ";
  benchx::write_meta_json(json);
  json << ",\n"
       << "  \"workload\": {\"flows\": " << kFlows << ", \"blocks\": " << blocks
       << ", \"merge_other_flows\": " << flows_b.size() << "},\n"
       << "  \"store\": {\"add_flows_ms\": " << store_ingest_ms
       << ", \"merge_ms\": " << store_merge_ms << ", \"bytes_per_block\": " << store_bpb
       << ", \"memory_bytes\": " << store_a.blocks().memory_bytes()
       << ", \"load_factor\": " << store_a.blocks().load_factor()
       << ", \"arena_spills\": " << store_a.blocks().arena_spills()
       << ", \"arena_wasted_ips\": " << store_a.blocks().arena_wasted_ips() << "},\n"
       << "  \"map_baseline\": {\"add_flows_ms\": " << map_ingest_ms
       << ", \"merge_ms\": " << map_merge_ms << ", \"bytes_per_block\": " << map_bpb
       << ", \"memory_bytes\": " << map_a.memory_bytes() << "},\n"
       << "  \"add_flows_speedup\": " << ingest_speedup << ",\n"
       << "  \"merge_speedup\": " << merge_speedup << ",\n"
       << "  \"bytes_per_block_reduction\": " << (1.0 - store_bpb / map_bpb) << "\n"
       << "}\n";
  std::printf("  wrote BENCH_store.json\n");
}

}  // namespace

int main(int argc, char** argv) {
  write_store_report();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
