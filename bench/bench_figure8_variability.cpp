// Figure 8: day-to-day variability of the number of inferred meta-telescope
// prefixes for CE1, NA1 and all sites over the measurement week.
#include "bench_common.hpp"
#include "pipeline/spoof_tolerance.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace mtscope;

int main() {
  benchx::print_header(
      "Figure 8 — daily variability of inferred prefixes",
      "CE1 day 1: 397k, roughly 2x by day 5; weekend days infer the most (less production "
      "traffic and DDoS activity)");

  const sim::Simulation& simulation = benchx::shared_simulation();
  const std::size_t ce1 = simulation.ixp_index("CE1");
  const std::size_t na1 = simulation.ixp_index("NA1");
  const auto all = benchx::all_ixp_indices(simulation);

  const auto infer_day = [&](std::span<const std::size_t> ixps, int day) {
    const int days[] = {day};
    const auto stats = pipeline::collect_stats(simulation, ixps, days);
    const std::uint64_t tolerance =
        pipeline::compute_spoof_tolerance(stats, simulation.plan().unrouted_slash8s());
    return benchx::run_inference(simulation, stats, tolerance).dark.size();
  };

  util::TextTable table({"Day", "CE1", "NA1", "All"});
  std::vector<std::uint64_t> all_series;
  std::vector<std::uint64_t> ce1_series;
  static const char* kDayNames[] = {"Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"};
  for (int day = 0; day < 7; ++day) {
    const std::size_t ce1_arr[] = {ce1};
    const std::size_t na1_arr[] = {na1};
    const std::uint64_t c = infer_day(ce1_arr, day);
    const std::uint64_t n = infer_day(na1_arr, day);
    const std::uint64_t a = infer_day(all, day);
    ce1_series.push_back(c);
    all_series.push_back(a);
    table.add_row({std::string(kDayNames[day]) + " (d" + std::to_string(day) + ")",
                   util::with_commas(c), util::with_commas(n), util::with_commas(a)});
  }
  std::printf("%s", table.render().c_str());

  const std::uint64_t weekday_avg =
      (all_series[0] + all_series[1] + all_series[2] + all_series[3] + all_series[4]) / 5;
  const std::uint64_t weekend_avg = (all_series[5] + all_series[6]) / 2;
  benchx::print_comparison("weekends infer more than weekdays (All)",
                           "visible weekend bump",
                           util::with_commas(weekend_avg) + " vs " +
                               util::with_commas(weekday_avg) +
                               (weekend_avg > weekday_avg ? " (matches)" : " (mismatch)"));
  const std::uint64_t ce1_min = *std::min_element(ce1_series.begin(), ce1_series.end());
  const std::uint64_t ce1_max = *std::max_element(ce1_series.begin(), ce1_series.end());
  benchx::print_comparison("CE1 swings day to day", "~2x between extremes",
                           util::fixed(static_cast<double>(ce1_max) /
                                           std::max<std::uint64_t>(1, ce1_min), 2) + "x");
  return 0;
}
