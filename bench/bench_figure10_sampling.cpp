// Figure 10: the effect of sub-sampling the flow data — number of inferred
// prefixes (rises, then collapses) and false-positive share (monotonically
// rising) as every k-th sampled packet is kept.
#include "bench_common.hpp"
#include <algorithm>
#include <span>

#include "flow/flow_table.hpp"
#include "flow/sampler.hpp"
#include "pipeline/evaluation.hpp"
#include "pipeline/spoof_tolerance.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace mtscope;

int main() {
  benchx::print_header(
      "Figure 10 — sub-sampling sweep (all sites, day 0)",
      "inferred count first RISES (spoofing thins out) then collapses; zero inferences by "
      "factor ~180; FP% rises monotonically with the factor");

  // This experiment needs a densely sampled base dataset (the paper's
  // factor sweep goes to 180 before inference dies); run a dedicated
  // simulation with 10x the traffic scale at the two largest fabrics.
  sim::SimConfig config = benchx::bench_config();
  config.volume_scale *= 10.0;
  config.general_slash8s = std::max(1, config.general_slash8s - 2);  // keep runtime in check
  const sim::Simulation simulation(config);
  const std::size_t all_arr[] = {simulation.ixp_index("CE1"), simulation.ixp_index("NA1")};
  const std::span<const std::size_t> all(all_arr);

  // Re-generate each vantage point's raw sampled packet stream once, then
  // apply deterministic every-kth sub-sampling ("for a factor of 2, only
  // consider every second packet"), re-running flow aggregation per factor.
  const int kFactors[] = {1, 2, 3, 5, 10, 20, 50, 100, 180};

  util::TextTable table({"Factor", "Packets", "Flows", "#Inferred", "FP share"});
  std::vector<std::uint64_t> inferred_series;
  std::vector<double> fp_series;

  for (const int factor : kFactors) {
    pipeline::VantageStats stats(simulation.plan().universe_mask());
    std::uint64_t packets_kept = 0;
    std::uint64_t flows_total = 0;
    for (const std::size_t i : all) {
      // Rebuild the day's packet stream deterministically.
      sim::IxpDayData day = simulation.run_ixp_day(i, 0);
      // Sub-sample at the *flow-record* granularity is wrong; the paper
      // sub-samples packets.  Our flows are per-packet dominated (sampled
      // SYNs), so thin flow records by keeping every k-th sampled packet
      // across the record stream.
      flow::DeterministicSampler sampler(static_cast<std::uint32_t>(factor));
      std::vector<flow::FlowRecord> kept;
      kept.reserve(day.flows.size() / factor + 1);
      for (flow::FlowRecord& record : day.flows) {
        std::uint64_t keep = 0;
        for (std::uint64_t p = 0; p < record.packets; ++p) {
          if (sampler.accept()) ++keep;
        }
        if (keep == 0) continue;
        const double scale = static_cast<double>(keep) / static_cast<double>(record.packets);
        record.bytes = static_cast<std::uint64_t>(static_cast<double>(record.bytes) * scale);
        record.packets = keep;
        record.sampling_rate *= static_cast<std::uint32_t>(factor);
        packets_kept += keep;
        kept.push_back(record);
      }
      flows_total += kept.size();
      stats.add_flows(kept, simulation.ixps()[i].sampling_rate() * factor, 0);
    }

    const std::uint64_t tolerance =
        pipeline::compute_spoof_tolerance(stats, simulation.plan().unrouted_slash8s());
    const auto result = benchx::run_inference(simulation, stats, tolerance);
    const auto eval = pipeline::evaluate_against_ground_truth(result.dark, simulation.plan());

    inferred_series.push_back(result.dark.size());
    fp_series.push_back(eval.false_positive_rate());
    table.add_row({std::to_string(factor), util::with_commas(packets_kept),
                   util::with_commas(flows_total), util::with_commas(result.dark.size()),
                   util::percent(eval.false_positive_rate())});
  }
  std::printf("%s", table.render().c_str());

  std::size_t peak = 0;
  for (std::size_t i = 1; i < inferred_series.size(); ++i) {
    if (inferred_series[i] > inferred_series[peak]) peak = i;
  }
  const bool rises_then_falls = peak > 0 && inferred_series.back() < inferred_series[peak];
  benchx::print_comparison("inferred count rises, then collapses", "sweet spot then blind",
                           rises_then_falls ? "matches (peak at factor " +
                                                  std::to_string(kFactors[peak]) + ")"
                                            : "check series");
  benchx::print_comparison("near-blind at factor 180", "0 inferred",
                           util::with_commas(inferred_series.back()));
  // FP share is meaningful only while anything is inferred at all.
  double first_fp = -1.0;
  double last_fp = -1.0;
  for (std::size_t i = 0; i < fp_series.size(); ++i) {
    if (inferred_series[i] == 0) continue;
    if (first_fp < 0) first_fp = fp_series[i];
    last_fp = fp_series[i];
  }
  benchx::print_comparison("FP share rises with the factor", "monotone increase",
                           last_fp > first_fp ? "matches" : "mismatch");
  return 0;
}
