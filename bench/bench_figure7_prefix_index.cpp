// Figure 7 (and Appendix Figures 16-17): the prefix index — per announced
// /8../16 prefix, the share of /24s inferred dark; ECDFs per prefix size,
// per network type and per continent.
#include "analysis/prefix_index.hpp"
#include "bench_common.hpp"
#include "pipeline/spoof_tolerance.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace mtscope;

int main() {
  benchx::print_header(
      "Figure 7 (+16, 17) — prefix index ECDFs",
      "6.6% of /8s exceed 5% dark share; some /16s exceed 40%; data-center prefixes have "
      "the least dark share; EU/AF least by continent");

  const sim::Simulation& simulation = benchx::shared_simulation();
  const auto all = benchx::all_ixp_indices(simulation);
  const int day0[] = {0};
  const auto stats = pipeline::collect_stats(simulation, all, day0);
  const std::uint64_t tolerance =
      pipeline::compute_spoof_tolerance(stats, simulation.plan().unrouted_slash8s());
  const auto result = benchx::run_inference(simulation, stats, tolerance);

  const auto entries = analysis::compute_prefix_index(simulation.plan().rib(), result.dark);
  std::printf("announced /8../16 prefixes analysed: %zu\n\n", entries.size());

  std::printf("--- Figure 7: ECDF of dark share by prefix size (x: 0..50%%) ---\n");
  for (const auto& [length, ecdf] : analysis::index_ecdf_by_length(entries)) {
    std::printf("  /%-2d (n=%5zu) |%s|\n", length, ecdf.size(),
                ecdf.sparkline(0.0, 0.5).c_str());
  }

  std::printf("\n--- Figure 16: by network type of the origin AS ---\n");
  const auto by_type = analysis::index_ecdf_by_type(entries, simulation.plan().nettypes());
  for (const auto& [type, ecdf] : by_type) {
    std::printf("  %-12s (n=%5zu) |%s|  share>10%%: %s\n",
                std::string(geo::net_type_name(type)).c_str(), ecdf.size(),
                ecdf.sparkline(0.0, 1.0).c_str(),
                util::percent(1.0 - ecdf.fraction_at_most(0.10)).c_str());
  }

  std::printf("\n--- Figure 17: by continent ---\n");
  const auto by_continent = analysis::index_ecdf_by_continent(entries, simulation.plan().geodb());
  for (const auto& [continent, ecdf] : by_continent) {
    std::printf("  %-4s (n=%5zu) |%s|  share>10%%: %s\n",
                std::string(geo::continent_code(continent)).c_str(), ecdf.size(),
                ecdf.sparkline(0.0, 1.0).c_str(),
                util::percent(1.0 - ecdf.fraction_at_most(0.10)).c_str());
  }
  std::printf("\n");

  // Headline comparisons.
  std::size_t big16 = 0;
  std::size_t n16 = 0;
  for (const auto& e : entries) {
    if (e.prefix.length() == 16) {
      ++n16;
      if (e.index() > 0.40) ++big16;
    }
  }
  benchx::print_comparison("some /16s have >40% dark share", "a few",
                           util::with_commas(big16) + " of " + util::with_commas(n16));

  const auto dc = by_type.find(geo::NetType::kDataCenter);
  const auto isp = by_type.find(geo::NetType::kIsp);
  if (dc != by_type.end() && isp != by_type.end() && !dc->second.empty() &&
      !isp->second.empty()) {
    benchx::print_comparison(
        "data centers have less dark share than ISPs (mean index)", "DC < ISP",
        util::percent(dc->second.mean()) + " vs " + util::percent(isp->second.mean()) +
            (dc->second.mean() < isp->second.mean() ? " (matches)" : " (mismatch)"));
  }

  const auto eu = by_continent.find(geo::Continent::kEurope);
  const auto na = by_continent.find(geo::Continent::kNorthAmerica);
  if (eu != by_continent.end() && na != by_continent.end() && !eu->second.empty() &&
      !na->second.empty()) {
    benchx::print_comparison(
        "EU has less dark share than NA (IPv4 scarcity)", "EU < NA",
        util::percent(eu->second.mean()) + " vs " + util::percent(na->second.mean()) +
            (eu->second.mean() < na->second.mean() ? " (matches)" : " (mismatch)"));
  }
  return 0;
}
