// Figures 5 and 6: Hilbert maps of two interesting /8s as seen from CE1,
// NA1 and all vantage points — different vantage points see different
// halves of the same /8 (routing visibility), and combining them completes
// the picture.
#include <fstream>

#include "analysis/hilbert_map.hpp"
#include "bench_common.hpp"
#include "pipeline/spoof_tolerance.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace mtscope;

namespace {

trie::Block24Set infer_week(const sim::Simulation& simulation,
                            std::span<const std::size_t> ixps) {
  const int week[] = {0, 1, 2, 3, 4, 5, 6};
  const auto stats = pipeline::collect_stats(simulation, ixps, week);
  const std::uint64_t tolerance =
      pipeline::compute_spoof_tolerance(stats, simulation.plan().unrouted_slash8s());
  return benchx::run_inference(simulation, stats, tolerance).dark;
}

std::uint64_t count_in_half(const trie::Block24Set& dark, std::uint8_t slash8, bool right) {
  const std::uint32_t base = std::uint32_t{slash8} << 16;
  return right ? dark.count_in_range(base + 32768, base + 65535)
               : dark.count_in_range(base, base + 32767);
}

void render(const char* label, const trie::Block24Set& dark, std::uint8_t slash8,
            const char* pgm_path) {
  const analysis::HilbertMap map(slash8, [&](net::Block24 block) {
    return dark.contains(block) ? analysis::HilbertPixel::kDark
                                : analysis::HilbertPixel::kNoData;
  });
  std::printf("--- %s ---\n%s\n", label, map.render_ascii(64).c_str());
  if (pgm_path != nullptr) {
    std::ofstream out(pgm_path, std::ios::binary);
    map.write_pgm(out);
  }
}

}  // namespace

int main() {
  benchx::print_header(
      "Figures 5 & 6 — Hilbert maps of a /8 per vantage point (week)",
      "Fig 5: CE1 sees the right /9, NA1 only the left /14; union completes the /8. "
      "Fig 6: NA1 reveals the telescope's three quadrants, CE1 almost nothing.");

  const sim::Simulation& simulation = benchx::shared_simulation();
  const std::size_t ce1[] = {simulation.ixp_index("CE1")};
  const std::size_t na1[] = {simulation.ixp_index("NA1")};
  const auto all = benchx::all_ixp_indices(simulation);

  const auto dark_ce1 = infer_week(simulation, ce1);
  const auto dark_na1 = infer_week(simulation, na1);
  const auto dark_all = infer_week(simulation, all);

  const std::uint8_t legacy = simulation.plan().legacy_slash8();
  std::printf("==== Figure 5: legacy /8 (%u.0.0.0/8) ====\n", legacy);
  render("CE1", dark_ce1, legacy, "figure5_ce1.pgm");
  render("NA1", dark_na1, legacy, "figure5_na1.pgm");
  render("All sites", dark_all, legacy, "figure5_all.pgm");

  benchx::print_comparison("CE1 sees the right /9 of the legacy /8", "dense right half",
                           util::with_commas(count_in_half(dark_ce1, legacy, true)) +
                               " blocks right vs " +
                               util::with_commas(count_in_half(dark_ce1, legacy, false)) +
                               " left");
  benchx::print_comparison("NA1 sees only the left-half /14", "no right half",
                           util::with_commas(count_in_half(dark_na1, legacy, true)) +
                               " blocks right, " +
                               util::with_commas(count_in_half(dark_na1, legacy, false)) +
                               " left");
  benchx::print_comparison(
      "combining sites completes the /8",
      "union >= each site",
      util::with_commas(count_in_half(dark_all, legacy, true) +
                        count_in_half(dark_all, legacy, false)) +
          " total at All");

  const std::uint8_t tel = simulation.plan().telescope_slash8();
  std::printf("\n==== Figure 6: telescope /8 (%u.0.0.0/8) ====\n", tel);
  render("CE1", dark_ce1, tel, "figure6_ce1.pgm");
  render("NA1", dark_na1, tel, "figure6_na1.pgm");
  render("All sites", dark_all, tel, "figure6_all.pgm");

  const std::uint32_t tel_base = std::uint32_t{tel} << 16;
  const std::uint64_t ce1_tel = dark_ce1.count_in_range(tel_base, tel_base + 65535);
  const std::uint64_t na1_tel = dark_na1.count_in_range(tel_base, tel_base + 65535);
  const std::uint64_t all_tel = dark_all.count_in_range(tel_base, tel_base + 65535);
  benchx::print_comparison("CE1 infers almost nothing in the telescope /8", "few pixels",
                           util::with_commas(ce1_tel));
  benchx::print_comparison("NA1 reveals the telescope's quadrants", "many pixels",
                           util::with_commas(na1_tel));
  benchx::print_comparison("All >= NA1 (multi-VP completes the picture)", "matches telescope",
                           util::with_commas(all_tel));
  std::printf("\nwrote figure5_*.pgm / figure6_*.pgm\n");
  return 0;
}
