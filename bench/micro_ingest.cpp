// End-to-end timing of the streaming ingest path (src/ingest): a tiny-sim
// flow stream is written to disk, then an IngestDaemon consumes it —
// per-day sliding window, per-cadence funnel re-run, atomic snapshot
// publish — exactly the `mtscope stream | mtscope ingest` deployment.
// Reported: sustained ingest throughput (flows/s over the whole run) and
// the per-epoch latency split (merge / tolerance / funnel / publish) from
// the daemon's own ingest.* timers.  main() writes BENCH_ingest.json for
// trend tracking across PRs.  Correctness is the hard gate — every epoch
// must publish, the final snapshot must parse — raw throughput is
// hardware-dependent and only recorded.  MTSCOPE_BENCH_SCALE=small
// shrinks the workload for CI smoke runs.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "bench_common.hpp"
#include "ingest/daemon.hpp"
#include "ingest/flow_stream.hpp"
#include "obs/metrics.hpp"
#include "serve/snapshot.hpp"
#include "sim/simulation.hpp"

using namespace mtscope;

namespace {

bool small_scale() {
  const char* scale = std::getenv("MTSCOPE_BENCH_SCALE");
  return scale != nullptr && std::strcmp(scale, "small") == 0;
}

int stream_days() { return small_scale() ? 2 : 4; }
constexpr std::uint64_t kSeed = 42;
constexpr int kWindowDays = 2;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One timer's summary as a JSON object fragment ({} when it never fired).
std::string timer_json(const obs::MetricsRegistry& metrics, const char* name) {
  const auto* timer = metrics.find_timer(name);
  if (timer == nullptr || timer->count() == 0) return "{}";
  return "{\"count\": " + std::to_string(timer->count()) +
         ", \"mean_us\": " + std::to_string(timer->mean_us()) +
         ", \"max_us\": " + std::to_string(timer->max_us()) + "}";
}

}  // namespace

int main() {
  const char* stream_path = "BENCH_ingest.tmp.mtfl";
  const char* snap_path = "BENCH_ingest.tmp.snap";
  const int days = stream_days();

  // -- Phase 1: materialise the stream (the `mtscope stream` side). -------
  const sim::Simulation simulation{sim::SimConfig::tiny(kSeed)};
  std::uint64_t stream_flows = 0;
  const double t_stream0 = now_ms();
  {
    std::ofstream out(stream_path, std::ios::binary | std::ios::trunc);
    ingest::FlowStreamWriter writer(out);
    writer.write_header({kSeed, true});
    for (int day = 0; day < days; ++day) {
      for (std::size_t i = 0; i < simulation.ixps().size(); ++i) {
        const auto data = simulation.run_ixp_day(i, day);
        writer.write_dataset(day, simulation.ixps()[i].sampling_rate(),
                             simulation.ixps()[i].spec().code, data.flows);
        stream_flows += data.flows.size();
      }
      writer.write_day_end(day);
    }
    writer.write_stream_end();
    if (!writer.ok()) {
      std::fprintf(stderr, "stream write failed\n");
      return 1;
    }
  }
  const double stream_ms = now_ms() - t_stream0;

  // -- Phase 2: consume it (the `mtscope ingest` side). -------------------
  ingest::IngestConfig config;
  config.source_path = stream_path;
  config.snapshot_out = snap_path;
  config.window_days = kWindowDays;
  config.cadence_days = 1;
  config.created_unix_s = 1'700'000'000;
  obs::MetricsRegistry metrics;
  ingest::IngestDaemon daemon(std::move(config), &metrics);

  const double t_ingest0 = now_ms();
  const auto run = daemon.run();
  const double ingest_ms = now_ms() - t_ingest0;
  if (!run.ok()) {
    std::fprintf(stderr, "ingest failed: %s\n", run.error().to_string().c_str());
    return 1;
  }
  const ingest::IngestTotals totals = run.value();

  // The final epoch must be a loadable snapshot — the watcher's view.
  std::uint64_t final_blocks = 0;
  {
    const auto snapshot = serve::read_snapshot_file(snap_path);
    if (!snapshot.ok()) {
      std::fprintf(stderr, "published snapshot unreadable: %s\n",
                   snapshot.error().to_string().c_str());
      return 1;
    }
    final_blocks = snapshot.value().blocks.size();
  }
  std::remove(stream_path);
  std::remove(snap_path);

  const double flows_per_s = 1e3 * static_cast<double>(totals.flows) / ingest_ms;
  const auto* publish = metrics.find_timer("ingest.publish_us");

  std::printf("== ingest: %d day(s), window %d, %llu flows ==\n", days, kWindowDays,
              static_cast<unsigned long long>(totals.flows));
  std::printf("  stream write: %.1f ms; ingest+publish: %.1f ms -> %.1f k flows/s sustained\n",
              stream_ms, ingest_ms, flows_per_s / 1e3);
  std::printf("  epochs %llu (failures %llu), evicted %llu day(s), final snapshot %llu blocks\n",
              static_cast<unsigned long long>(totals.publishes),
              static_cast<unsigned long long>(totals.publish_failures),
              static_cast<unsigned long long>(totals.days_evicted),
              static_cast<unsigned long long>(final_blocks));
  if (publish != nullptr && publish->count() > 0) {
    std::printf("  publish latency: mean %llu us, max %llu us over %llu epoch(s)\n",
                static_cast<unsigned long long>(publish->mean_us()),
                static_cast<unsigned long long>(publish->max_us()),
                static_cast<unsigned long long>(publish->count()));
  }

  std::ofstream json("BENCH_ingest.json");
  json << "{\n"
       << "  \"meta\": ";
  benchx::write_meta_json(json);
  json << ",\n"
       << "  \"workload\": {\"days\": " << days << ", \"window_days\": " << kWindowDays
       << ", \"flows\": " << totals.flows << ", \"datasets\": " << totals.datasets << "},\n"
       << "  \"stream_write_ms\": " << stream_ms << ",\n"
       << "  \"ingest_ms\": " << ingest_ms << ",\n"
       << "  \"flows_per_s\": " << flows_per_s << ",\n"
       << "  \"epochs\": " << totals.publishes << ",\n"
       << "  \"publish_failures\": " << totals.publish_failures << ",\n"
       << "  \"final_snapshot_blocks\": " << final_blocks << ",\n"
       << "  \"merge\": " << timer_json(metrics, "ingest.merge_us") << ",\n"
       << "  \"tolerance\": " << timer_json(metrics, "ingest.tolerance_us") << ",\n"
       << "  \"funnel\": " << timer_json(metrics, "ingest.funnel_us") << ",\n"
       << "  \"publish\": " << timer_json(metrics, "ingest.publish_us") << "\n"
       << "}\n";
  std::printf("  wrote BENCH_ingest.json\n");

  if (totals.publishes != static_cast<std::uint64_t>(days) || totals.publish_failures != 0 ||
      totals.flows != stream_flows || final_blocks == 0) {
    std::fprintf(stderr, "ingest FAILED correctness checks\n");
    return 1;
  }
  return 0;
}
