// Table 6: inferred meta-telescope prefixes, origin ASes and countries per
// individual vantage point and for all sites combined (one day, after
// hit-list correction as in §4.3).
#include "analysis/world_map.hpp"
#include "bench_common.hpp"
#include "pipeline/hitlists.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace mtscope;

int main() {
  benchx::print_header(
      "Table 6 — inferred prefixes per vantage point (day 0, corrected)",
      "CE1 397k / NA1 396k dominate; small sites still find hundreds (NA3: 262); "
      "All combined 318,646 in 7,195 ASes / 194 countries (less than CE1 alone)");

  const sim::Simulation& simulation = benchx::shared_simulation();
  const auto pfx2as = simulation.plan().make_pfx2as();

  // Hit-list union for the final correction.
  std::vector<pipeline::HitList> lists;
  for (const auto& spec : pipeline::default_hitlist_specs()) {
    lists.push_back(
        pipeline::HitList::generate(simulation.plan(), spec, simulation.config().seed));
  }
  const auto active_union = pipeline::hitlist_union(lists);

  const auto infer_for = [&](std::span<const std::size_t> ixps) {
    const int day0[] = {0};
    const auto stats = pipeline::collect_stats(simulation, ixps, day0);
    const std::uint64_t tolerance =
        pipeline::compute_spoof_tolerance(stats, simulation.plan().unrouted_slash8s());
    const auto result = benchx::run_inference(simulation, stats, tolerance);
    return pipeline::apply_hitlist_correction(result.dark, active_union);
  };

  util::TextTable table({"IXP", "#Inferred meta-telescope prefixes", "#ASes", "#Countries"});

  std::uint64_t ce1_count = 0;
  std::uint64_t na3_count = 0;
  for (std::size_t i = 0; i < simulation.ixps().size(); ++i) {
    const std::size_t one[] = {i};
    const auto corrected = infer_for(one);
    const auto summary =
        analysis::summarize_geography(corrected, simulation.plan().geodb(), pfx2as);
    const std::string code = simulation.ixps()[i].spec().code;
    if (code == "CE1") ce1_count = summary.total_blocks;
    if (code == "NA3") na3_count = summary.total_blocks;
    table.add_row({code, util::with_commas(summary.total_blocks),
                   util::with_commas(summary.distinct_ases),
                   util::with_commas(summary.distinct_countries)});
  }

  const auto all = benchx::all_ixp_indices(simulation);
  const auto all_corrected = infer_for(all);
  const auto all_summary =
      analysis::summarize_geography(all_corrected, simulation.plan().geodb(), pfx2as);
  table.add_separator();
  table.add_row({"All", util::with_commas(all_summary.total_blocks),
                 util::with_commas(all_summary.distinct_ases),
                 util::with_commas(all_summary.distinct_countries)});
  std::printf("%s", table.render().c_str());

  benchx::print_comparison("CE1 is a top contributor", "397,000",
                           util::with_commas(ce1_count));
  benchx::print_comparison("small sites still contribute (NA3)", "262",
                           util::with_commas(na3_count));
  benchx::print_comparison("All < max(single site) (conservative combine)",
                           "318,646 < 397,000",
                           all_summary.total_blocks < ce1_count
                               ? util::with_commas(all_summary.total_blocks) + " < " +
                                     util::with_commas(ce1_count) + " (matches)"
                               : util::with_commas(all_summary.total_blocks) +
                                     " (no reduction)");
  return 0;
}
