// Ablation micro-benchmarks: longest-prefix-match structures and /24-set
// representations (DESIGN.md §5).
#include <benchmark/benchmark.h>

#include <unordered_set>
#include <vector>

#include "trie/block24_set.hpp"
#include "trie/prefix_trie.hpp"
#include "util/rng.hpp"

using namespace mtscope;

namespace {

std::vector<std::pair<net::Prefix, std::uint32_t>> make_prefixes(std::size_t count) {
  util::Rng rng(99);
  std::vector<std::pair<net::Prefix, std::uint32_t>> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const int len = 8 + static_cast<int>(rng.uniform(17));  // /8../24
    out.emplace_back(
        net::Prefix::canonical(net::Ipv4Addr(static_cast<std::uint32_t>(rng.next())), len),
        static_cast<std::uint32_t>(i));
  }
  return out;
}

void BM_TrieLongestMatch(benchmark::State& state) {
  const auto prefixes = make_prefixes(static_cast<std::size_t>(state.range(0)));
  trie::PrefixTrie<std::uint32_t> trie;
  for (const auto& [prefix, value] : prefixes) trie.insert(prefix, value);
  util::Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trie.longest_match(net::Ipv4Addr(static_cast<std::uint32_t>(rng.next()))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrieLongestMatch)->Arg(1000)->Arg(10000)->Arg(100000);

// Baseline: linear scan over the prefix list (what the trie replaces).
void BM_LinearLongestMatch(benchmark::State& state) {
  const auto prefixes = make_prefixes(static_cast<std::size_t>(state.range(0)));
  util::Rng rng(7);
  for (auto _ : state) {
    const net::Ipv4Addr addr(static_cast<std::uint32_t>(rng.next()));
    const std::pair<net::Prefix, std::uint32_t>* best = nullptr;
    for (const auto& entry : prefixes) {
      if (entry.first.contains(addr) &&
          (best == nullptr || entry.first.length() > best->first.length())) {
        best = &entry;
      }
    }
    benchmark::DoNotOptimize(best);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LinearLongestMatch)->Arg(1000)->Arg(10000);

void BM_TrieInsert(benchmark::State& state) {
  const auto prefixes = make_prefixes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    trie::PrefixTrie<std::uint32_t> trie;
    for (const auto& [prefix, value] : prefixes) trie.insert(prefix, value);
    benchmark::DoNotOptimize(trie.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TrieInsert)->Arg(1000)->Arg(10000);

void BM_Block24SetMembership(benchmark::State& state) {
  trie::Block24Set set;
  util::Rng rng(5);
  for (int i = 0; i < 300'000; ++i) {
    set.insert(net::Block24(static_cast<std::uint32_t>(rng.uniform(1u << 24))));
  }
  util::Rng probe(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        set.contains(net::Block24(static_cast<std::uint32_t>(probe.uniform(1u << 24)))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Block24SetMembership);

// Baseline: unordered_set of block indices.
void BM_HashSetMembership(benchmark::State& state) {
  std::unordered_set<std::uint32_t> set;
  util::Rng rng(5);
  for (int i = 0; i < 300'000; ++i) {
    set.insert(static_cast<std::uint32_t>(rng.uniform(1u << 24)));
  }
  util::Rng probe(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        set.contains(static_cast<std::uint32_t>(probe.uniform(1u << 24))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashSetMembership);

void BM_Block24SetCountInRange(benchmark::State& state) {
  trie::Block24Set set;
  util::Rng rng(5);
  for (int i = 0; i < 300'000; ++i) {
    set.insert(net::Block24(static_cast<std::uint32_t>(rng.uniform(1u << 24))));
  }
  util::Rng probe(8);
  for (auto _ : state) {
    const auto lo = static_cast<std::uint32_t>(probe.uniform(1u << 24));
    benchmark::DoNotOptimize(set.count_in_range(lo, lo + 65535));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Block24SetCountInRange);

}  // namespace

BENCHMARK_MAIN();
