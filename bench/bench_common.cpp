#include "bench_common.hpp"

#include <cstdlib>
#include <cstring>

namespace mtscope::benchx {

sim::SimConfig bench_config() {
  const char* scale = std::getenv("MTSCOPE_BENCH_SCALE");
  if (scale != nullptr && std::strcmp(scale, "small") == 0) {
    sim::SimConfig config = sim::SimConfig::tiny(42);
    config.ixps = sim::SimConfig::default_ixps();
    return config;
  }
  return sim::SimConfig{};  // default: 3 general /8s + specials, 14 IXPs
}

const sim::Simulation& shared_simulation() {
  static const sim::Simulation instance{bench_config()};
  return instance;
}

pipeline::InferenceResult run_inference(const sim::Simulation& simulation,
                                        const pipeline::VantageStats& stats,
                                        std::uint64_t tolerance_pkts) {
  static const routing::SpecialPurposeRegistry registry =
      routing::SpecialPurposeRegistry::standard();
  pipeline::PipelineConfig config;
  config.volume_scale = simulation.config().volume_scale;
  config.spoof_tolerance_pkts = tolerance_pkts;
  const pipeline::InferenceEngine engine(config, simulation.plan().rib(), registry);
  return engine.infer(stats);
}

void print_header(const std::string& experiment, const std::string& paper_summary) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("paper: %s\n", paper_summary.c_str());
  std::printf("(absolute counts are scaled; compare shapes, orderings, ratios)\n");
  std::printf("================================================================\n");
}

void print_comparison(const std::string& metric, const std::string& paper,
                      const std::string& measured) {
  std::printf("  %-46s paper: %-18s measured: %s\n", metric.c_str(), paper.c_str(),
              measured.c_str());
}

std::vector<std::size_t> all_ixp_indices(const sim::Simulation& simulation) {
  return pipeline::all_ixps(simulation);
}

}  // namespace mtscope::benchx
