#include "bench_common.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <ostream>
#include <thread>

#if defined(__linux__)
#include <sched.h>
#include <unistd.h>
#endif

namespace mtscope::benchx {

unsigned HardwareContext::effective_cores() const noexcept {
  unsigned cores = cpus_allowed != 0 ? cpus_allowed : cpus_online;
  if (cores == 0) cores = hardware_concurrency;
  if (cpu_quota_cores > 0.0 && cpu_quota_cores < static_cast<double>(cores)) {
    cores = static_cast<unsigned>(cpu_quota_cores);
  }
  return std::max(1u, cores);
}

HardwareContext hardware_context() {
  HardwareContext ctx;
  ctx.hardware_concurrency = std::thread::hardware_concurrency();
#if defined(__linux__)
  const long online = sysconf(_SC_NPROCESSORS_ONLN);
  if (online > 0) ctx.cpus_online = static_cast<unsigned>(online);
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    ctx.cpus_allowed = static_cast<unsigned>(CPU_COUNT(&set));
  }
  // cgroup v2 ("<quota|max> <period>"), then v1 (quota/period in separate
  // files, quota -1 when unlimited).
  if (std::ifstream v2("/sys/fs/cgroup/cpu.max"); v2) {
    std::string quota;
    long long period = 0;
    if ((v2 >> quota >> period) && period > 0 && quota != "max") {
      ctx.cpu_quota_cores =
          static_cast<double>(std::strtoll(quota.c_str(), nullptr, 10)) /
          static_cast<double>(period);
    }
  } else {
    std::ifstream quota_file("/sys/fs/cgroup/cpu/cpu.cfs_quota_us");
    std::ifstream period_file("/sys/fs/cgroup/cpu/cpu.cfs_period_us");
    long long quota = 0;
    long long period = 0;
    if ((quota_file >> quota) && (period_file >> period) && quota > 0 && period > 0) {
      ctx.cpu_quota_cores = static_cast<double>(quota) / static_cast<double>(period);
    }
  }
#endif
  return ctx;
}

void write_meta_json(std::ostream& out) {
  const HardwareContext ctx = hardware_context();
  const char* scale = std::getenv("MTSCOPE_BENCH_SCALE");
  out << "{\"scale\": \"" << (scale != nullptr ? scale : "default")
      << "\", \"cpus_online\": " << ctx.cpus_online
      << ", \"cpus_allowed\": " << ctx.cpus_allowed
      << ", \"hardware_concurrency\": " << ctx.hardware_concurrency
      << ", \"cpu_quota_cores\": " << ctx.cpu_quota_cores
      << ", \"effective_cores\": " << ctx.effective_cores() << "}";
}

sim::SimConfig bench_config() {
  const char* scale = std::getenv("MTSCOPE_BENCH_SCALE");
  if (scale != nullptr && std::strcmp(scale, "small") == 0) {
    sim::SimConfig config = sim::SimConfig::tiny(42);
    config.ixps = sim::SimConfig::default_ixps();
    return config;
  }
  return sim::SimConfig{};  // default: 3 general /8s + specials, 14 IXPs
}

const sim::Simulation& shared_simulation() {
  static const sim::Simulation instance{bench_config()};
  return instance;
}

pipeline::InferenceResult run_inference(const sim::Simulation& simulation,
                                        const pipeline::VantageStats& stats,
                                        std::uint64_t tolerance_pkts) {
  static const routing::SpecialPurposeRegistry registry =
      routing::SpecialPurposeRegistry::standard();
  pipeline::PipelineConfig config;
  config.volume_scale = simulation.config().volume_scale;
  config.spoof_tolerance_pkts = tolerance_pkts;
  const pipeline::InferenceEngine engine(config, simulation.plan().rib(), registry);
  return engine.infer(stats);
}

void print_header(const std::string& experiment, const std::string& paper_summary) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("paper: %s\n", paper_summary.c_str());
  std::printf("(absolute counts are scaled; compare shapes, orderings, ratios)\n");
  std::printf("================================================================\n");
}

void print_comparison(const std::string& metric, const std::string& paper,
                      const std::string& measured) {
  std::printf("  %-46s paper: %-18s measured: %s\n", metric.c_str(), paper.c_str(),
              measured.c_str());
}

std::vector<std::size_t> all_ixp_indices(const sim::Simulation& simulation) {
  return pipeline::all_ixps(simulation);
}

}  // namespace mtscope::benchx
