// Figure 2: the inference funnel — /24 counts surviving each pipeline step,
// all vantage points, one day.
#include "bench_common.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace mtscope;

int main() {
  benchx::print_header(
      "Figure 2 — inference pipeline funnel (all IXPs, day 0)",
      "6.22M seen -> TCP 5.92M -> avg<=44B 5.25M -> never-sent 5.13M -> reserved 5.13M -> "
      "routed 5.13M -> volume 5.05M -> 370k dark / 883k unclean / 3.79M gray");

  const sim::Simulation& simulation = benchx::shared_simulation();
  const auto ixps = benchx::all_ixp_indices(simulation);
  const int days[] = {0};
  const pipeline::VantageStats stats = pipeline::collect_stats(simulation, ixps, days);
  const auto result = benchx::run_inference(simulation, stats);

  const auto& f = result.funnel;
  const auto bar = [&](std::uint64_t value) {
    const auto width = static_cast<std::size_t>(
        60.0 * static_cast<double>(value) / static_cast<double>(f.seen));
    return std::string(width, '#');
  };
  const auto line = [&](const char* label, std::uint64_t value) {
    std::printf("  %-28s %10s |%s\n", label, util::with_commas(value).c_str(),
                bar(value).c_str());
  };

  line("/24s receiving traffic", f.seen);
  line("1. TCP traffic", f.after_tcp);
  line("2. avg TCP size <= 44B", f.after_size);
  line("3. never sent a packet", f.after_source);
  line("4. not private/reserved", f.after_reserved);
  line("5. globally routed", f.after_routed);
  line("6. <= 1.7M pkts/day", f.after_volume);
  std::printf("\n  7. classification: dark=%s  unclean=%s  gray=%s\n",
              util::with_commas(result.dark.size()).c_str(),
              util::with_commas(result.unclean).c_str(),
              util::with_commas(result.gray).c_str());

  const double paper_ratio[] = {1.0, 0.9526, 0.8448, 0.8258, 0.8255, 0.8252, 0.8114};
  const double measured[] = {
      1.0,
      static_cast<double>(f.after_tcp) / f.seen,
      static_cast<double>(f.after_size) / f.seen,
      static_cast<double>(f.after_source) / f.seen,
      static_cast<double>(f.after_reserved) / f.seen,
      static_cast<double>(f.after_routed) / f.seen,
      static_cast<double>(f.after_volume) / f.seen,
  };
  std::printf("\n");
  const char* names[] = {"seen", "tcp", "size", "source", "reserved", "routed", "volume"};
  for (int i = 1; i < 7; ++i) {
    benchx::print_comparison(std::string("survivor share after '") + names[i] + "'",
                             util::percent(paper_ratio[i]), util::percent(measured[i]));
  }
  benchx::print_comparison("gray dominates the classified set",
                           "3.79M of 5.05M (75%)",
                           util::percent(static_cast<double>(result.gray) / f.after_volume));
  benchx::print_comparison(
      "dark : unclean ratio", "370k : 883k (0.42)",
      util::fixed(static_cast<double>(result.dark.size()) /
                      std::max<std::uint64_t>(1, result.unclean), 2));
  return 0;
}
