// Shared harness glue for the per-table / per-figure bench binaries.
//
// Every bench prints the paper's reported values next to our measured ones.
// Absolute numbers differ by design (the substrate is a scaled simulation —
// see DESIGN.md §2); the claim being reproduced is the *shape*: orderings,
// ratios, crossovers.
#pragma once

#include <cstdio>
#include <string>

#include "pipeline/collector.hpp"
#include "pipeline/inference.hpp"
#include "pipeline/spoof_tolerance.hpp"
#include "sim/simulation.hpp"

namespace mtscope::benchx {

/// The bench-scale simulation configuration.  MTSCOPE_BENCH_SCALE=small in
/// the environment shrinks the universe for quick iteration.
[[nodiscard]] sim::SimConfig bench_config();

/// One shared simulation per bench binary.
[[nodiscard]] const sim::Simulation& shared_simulation();

/// Run the pipeline with the simulation's volume scale and the given
/// spoofing tolerance.
[[nodiscard]] pipeline::InferenceResult run_inference(const sim::Simulation& simulation,
                                                      const pipeline::VantageStats& stats,
                                                      std::uint64_t tolerance_pkts = 0);

/// Banner naming the experiment and the paper's headline numbers.
void print_header(const std::string& experiment, const std::string& paper_summary);

/// One "paper vs measured" comparison line.
void print_comparison(const std::string& metric, const std::string& paper,
                      const std::string& measured);

/// ixp indices {0..n-1}.
[[nodiscard]] std::vector<std::size_t> all_ixp_indices(const sim::Simulation& simulation);

}  // namespace mtscope::benchx
