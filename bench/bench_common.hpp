// Shared harness glue for the per-table / per-figure bench binaries.
//
// Every bench prints the paper's reported values next to our measured ones.
// Absolute numbers differ by design (the substrate is a scaled simulation —
// see DESIGN.md §2); the claim being reproduced is the *shape*: orderings,
// ratios, crossovers.
#pragma once

#include <cstdio>
#include <iosfwd>
#include <string>

#include "pipeline/collector.hpp"
#include "pipeline/inference.hpp"
#include "pipeline/spoof_tolerance.hpp"
#include "sim/simulation.hpp"

namespace mtscope::benchx {

/// Host execution context of a bench run.  BENCH_*.json numbers are only
/// comparable across runs on comparable hardware, and perf gates must not
/// demand multicore speedups from a single-core container — so every
/// bench records where it ran and cmake/parallel_gate.cmake reads this
/// block to decide which assertions the numbers can support.
struct HardwareContext {
  unsigned cpus_online = 0;           ///< sysconf(_SC_NPROCESSORS_ONLN)
  unsigned cpus_allowed = 0;          ///< popcount of sched_getaffinity mask
  unsigned hardware_concurrency = 0;  ///< std::thread::hardware_concurrency()
  double cpu_quota_cores = 0.0;       ///< cgroup cpu limit in cores; 0 = none found

  /// Cores a parallel speedup claim may assume: the affinity mask (the
  /// strictest kernel-enforced bound available), clamped by any cgroup
  /// quota (containers commonly show every host CPU in the mask while
  /// metering the actual cycles).  Never less than 1.
  [[nodiscard]] unsigned effective_cores() const noexcept;
};

/// Probes the context once per call; cheap enough to call per report.
[[nodiscard]] HardwareContext hardware_context();

/// Writes the shared `"meta"` JSON object (scale + HardwareContext fields)
/// every BENCH_*.json carries, on one line with no trailing newline.
void write_meta_json(std::ostream& out);

/// The bench-scale simulation configuration.  MTSCOPE_BENCH_SCALE=small in
/// the environment shrinks the universe for quick iteration.
[[nodiscard]] sim::SimConfig bench_config();

/// One shared simulation per bench binary.
[[nodiscard]] const sim::Simulation& shared_simulation();

/// Run the pipeline with the simulation's volume scale and the given
/// spoofing tolerance.
[[nodiscard]] pipeline::InferenceResult run_inference(const sim::Simulation& simulation,
                                                      const pipeline::VantageStats& stats,
                                                      std::uint64_t tolerance_pkts = 0);

/// Banner naming the experiment and the paper's headline numbers.
void print_header(const std::string& experiment, const std::string& paper_summary);

/// One "paper vs measured" comparison line.
void print_comparison(const std::string& metric, const std::string& paper,
                      const std::string& measured);

/// ixp indices {0..n-1}.
[[nodiscard]] std::vector<std::size_t> all_ixp_indices(const sim::Simulation& simulation);

}  // namespace mtscope::benchx
