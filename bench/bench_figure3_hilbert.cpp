// Figure 3: Hilbert map of the IPv4 space around an operational telescope —
// inferred dark blocks should fall almost entirely inside the telescope's
// marked boundary.
#include <fstream>

#include "analysis/hilbert_map.hpp"
#include "bench_common.hpp"
#include "pipeline/spoof_tolerance.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace mtscope;

int main() {
  benchx::print_header(
      "Figure 3 — Hilbert curve around an operational telescope",
      "inferred blocks fall within the telescope's gray box; only ~5 colored pixels outside");

  const sim::Simulation& simulation = benchx::shared_simulation();
  const auto all = benchx::all_ixp_indices(simulation);
  const int week[] = {0, 1, 2, 3, 4, 5, 6};
  const auto stats = pipeline::collect_stats(simulation, all, week);
  const std::uint64_t tolerance =
      pipeline::compute_spoof_tolerance(stats, simulation.plan().unrouted_slash8s());
  const auto result = benchx::run_inference(simulation, stats, tolerance);

  // Mark the TUS1 telescope's boundary; the plan places it in quarters
  // 0, 1 and 3 of the telescope /8.
  const std::uint8_t slash8 = simulation.plan().telescope_slash8();
  const auto in_telescope = [&](net::Block24 block) {
    const std::uint32_t i = block.index() & 0xffff;
    const std::uint32_t quarter = i / 16384;
    return quarter != 2;
  };

  const analysis::HilbertMap map(slash8, [&](net::Block24 block) {
    const bool dark = result.dark.contains(block);
    const bool marked = in_telescope(block);
    if (dark && marked) return analysis::HilbertPixel::kDarkMarked;
    if (dark) return analysis::HilbertPixel::kDark;
    if (marked) return analysis::HilbertPixel::kMarked;
    return analysis::HilbertPixel::kNoData;
  });

  std::printf("%s\n", map.render_ascii(64).c_str());
  std::printf("legend: #/*/=/. = inferred dark density, + = telescope boundary (not inferred)\n\n");

  {
    std::ofstream pgm("figure3_hilbert.pgm", std::ios::binary);
    map.write_pgm(pgm);
    std::printf("wrote figure3_hilbert.pgm (256x256, 8-bit graymap)\n\n");
  }

  const std::uint64_t inside = map.count(analysis::HilbertPixel::kDarkMarked);
  const std::uint64_t outside = map.count(analysis::HilbertPixel::kDark);
  benchx::print_comparison("inferred pixels inside the telescope box",
                           "almost all", util::with_commas(inside));
  benchx::print_comparison("inferred pixels outside the box", "~5 (stray dark space)",
                           util::with_commas(outside));
  benchx::print_comparison("containment",
                           ">99%", util::percent(static_cast<double>(inside) /
                                                 std::max<std::uint64_t>(1, inside + outside)));
  return 0;
}
